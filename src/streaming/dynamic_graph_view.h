// GraphView adapter over the streaming delta overlay: the bridge that lets
// the ROI sampler (and through it the trainer) score freshly ingested edges
// without waiting for Compact(). The view holds one epoch-pinned Snapshot;
// all reads within a ROI expansion therefore observe a consistent graph.
// Refresh() re-pins to the latest watermark epoch — the trainer calls it at
// minibatch boundaries when the ingest pipeline signals new batches (see
// streaming/training_freshness.h).
//
// Thread-safety: concurrent reads are safe (Snapshot reads are), but
// Refresh() must not race reads on the same view — it is meant for a
// single-consumer loop such as the trainer. Give each reader thread its own
// view; they are cheap (one shared_ptr + one epoch).
// TTL/decay windows: a view constructed with an explicit DecaySpec pins its
// snapshots to that window instead of the graph default, so two views over
// one DynamicHeteroGraph can serve a 1-hour and a 1-day behavior horizon
// from the same stream. Snapshot reads on delta-heavy nodes transparently
// consult the attached maintenance::HotNodeOverlayCache (pre-merged lists +
// alias tables), so the view needs no cache plumbing of its own.
#ifndef ZOOMER_STREAMING_DYNAMIC_GRAPH_VIEW_H_
#define ZOOMER_STREAMING_DYNAMIC_GRAPH_VIEW_H_

#include <optional>
#include <span>
#include <vector>

#include "graph/graph_view.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/edge_decay.h"

namespace zoomer {
namespace streaming {

class DynamicGraphView final : public graph::GraphView {
 public:
  /// `graph` must outlive the view. Pins to the current watermark epoch
  /// under the graph-default decay window.
  explicit DynamicGraphView(const DynamicHeteroGraph* graph)
      : graph_(graph), snapshot_(graph->MakeSnapshot()) {}

  /// Same, but every snapshot this view pins applies `window` instead of
  /// the graph-default spec (per-view freshness horizon). The graph must
  /// already have a LogicalClock installed (SetClock or ConfigureDecay —
  /// a TtlDecayPolicy does the latter); an active window without a clock
  /// is a hard error, not a silent no-op.
  DynamicGraphView(const DynamicHeteroGraph* graph, const DecaySpec& window)
      : graph_(graph), window_(window), snapshot_(graph->MakeSnapshot(window)) {}

  /// Re-pins to the latest watermark epoch (and re-reads the logical clock
  /// for decay); returns the epoch now visible.
  uint64_t Refresh() {
    snapshot_ = window_.has_value() ? graph_->MakeSnapshot(*window_)
                                    : graph_->MakeSnapshot();
    return snapshot_.epoch();
  }

  const DynamicHeteroGraph::Snapshot& snapshot() const { return snapshot_; }

  /// Epoch-pinned id-space: base nodes plus overlay nodes born at or below
  /// the pinned epoch — a node ingested mid-epoch appears here only after
  /// the next Refresh() that covers its birth epoch. The pinned base is a
  /// SegmentedCsr; untouched segments are shared across incremental folds,
  /// so the zero-copy spans below stay valid for this view's lifetime.
  int64_t num_nodes() const override { return snapshot_.num_nodes(); }
  int content_dim() const override { return snapshot_.base().content_dim(); }
  // Node features are immutable once ingested; the snapshot resolves base
  // ids zero-copy and overlay ids through the append-only node records.
  graph::NodeType node_type(graph::NodeId id) const override {
    return snapshot_.node_type(id);
  }
  const float* content(graph::NodeId id) const override {
    return snapshot_.content(id);
  }
  std::span<const int64_t> slots(graph::NodeId id) const override {
    return snapshot_.slots(id);
  }
  int64_t degree(graph::NodeId id) const override {
    return snapshot_.Degree(id);
  }
  graph::NeighborBlock Neighbors(graph::NodeId id,
                                 graph::NeighborScratch* scratch) const override;
  graph::NeighborBlock NeighborsOfType(
      graph::NodeId id, graph::NodeType t,
      graph::NeighborScratch* scratch) const override;
  graph::NodeId SampleNeighbor(graph::NodeId id, Rng* rng) const override {
    return snapshot_.SampleNeighbor(id, rng);
  }
  void SampleManyNeighbors(std::span<const graph::NodeId> nodes, int k,
                           Rng* rng,
                           std::vector<graph::NodeId>* out) const override {
    snapshot_.SampleManyNeighbors(nodes, k, rng, out);
  }
  std::vector<graph::NodeId> SampleDistinctNeighbors(graph::NodeId id, int k,
                                                     Rng* rng) const override {
    return snapshot_.SampleDistinctNeighbors(id, k, rng);
  }
  uint64_t epoch() const override { return snapshot_.epoch(); }

 private:
  const DynamicHeteroGraph* graph_;
  std::optional<DecaySpec> window_;  // per-view override of the graph spec
  DynamicHeteroGraph::Snapshot snapshot_;
};

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_DYNAMIC_GRAPH_VIEW_H_
