// Streaming ingestion pipeline (paper Sec. VI "Graph generator", moved
// online): turns live search sessions — the same SessionRecord stream the
// offline generator parses from behavior logs — into edge-event delta
// batches, routes each batch to the graph shard that owns its primary
// endpoint (the same hash partitioning the distributed graph engine uses),
// appends it to the GraphDeltaLog for an epoch, applies it to the
// DynamicHeteroGraph, and fires update hooks so serving-layer caches can
// invalidate the touched nodes.
//
// One consumer thread per shard drains a bounded queue, so batches for one
// shard apply in epoch order (FIFO) while shards proceed in parallel —
// mirroring the per-shard ownership of the distributed engine.
#ifndef ZOOMER_STREAMING_INGEST_PIPELINE_H_
#define ZOOMER_STREAMING_INGEST_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "graph/session_log.h"
#include "obs/metrics.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace engine {
class DistributedGraphEngine;
}  // namespace engine

namespace streaming {

struct IngestOptions {
  /// Shard count for routing; match EngineOptions::num_shards when an
  /// engine is attached so updates land on the owning shard.
  int num_shards = 4;
  /// Events buffered per shard before a delta batch is cut. Smaller batches
  /// lower update-visibility latency; larger ones raise throughput.
  int batch_size = 64;
  /// Bounded per-shard queue capacity (events); Offer blocks when full.
  int queue_capacity = 4096;
  /// Metrics registry the pipeline registers its instruments with (names
  /// under "streaming."). Null means the process-global registry; inject a
  /// private one in tests that assert on metric values.
  obs::MetricsRegistry* registry = nullptr;
};

struct IngestStats {
  int64_t sessions = 0;        // sessions offered
  int64_t events = 0;          // edge events emitted
  int64_t events_applied = 0;  // edge events applied to the dynamic graph
  int64_t batches = 0;         // delta batches cut
  int64_t nodes_ingested = 0;  // brand-new nodes applied (id-space growth)
  uint64_t last_epoch = 0;
  /// Edge events dropped because an endpoint was outside the allocated
  /// id-space, per shard (routed by the in-range endpoint). These are the
  /// cold-start misses: entities the graph has never ingested. Formerly a
  /// silent drop; events_dropped() aggregates them plus self-loop drops.
  std::vector<int64_t> rejected_unknown_node;
  /// OfferNewNode calls rejected by the graph's per-type capacity limit
  /// (DynamicHeteroGraphOptions::max_nodes_per_type), per shard — the
  /// mirror of rejected_unknown_node for id-space growth.
  std::vector<int64_t> rejected_capacity;
};

/// Converts sessions to edge events exactly as the offline graph builder
/// wires them: click edges user-query and query-item, session edges between
/// adjacently clicked items. Exposed for tests and replay tooling.
std::vector<EdgeEvent> SessionToEvents(const graph::SessionRecord& session);

class IngestPipeline : public CompactionParticipant {
 public:
  /// Hook invoked after a batch is applied, with the batch's delta-log
  /// epoch and the distinct nodes it touched. Runs on the shard consumer
  /// thread — keep it cheap (e.g. schedule cache invalidations). The epoch
  /// is what a session stamps into engine::SampleRequest::min_epoch (or
  /// serving::OnlineServer::SessionToken) for read-your-writes routing.
  using UpdateListener =
      std::function<void(uint64_t epoch, const std::vector<graph::NodeId>&)>;

  /// `log` and `graph` must outlive the pipeline. `engine` is optional; when
  /// present, per-shard update counts are reported into its stats.
  /// Construction wires the streaming correctness plumbing: this pipeline
  /// attaches to the graph as a CompactionParticipant (Compact() quiesces
  /// it at a batch boundary, detached on Stop()), and every batch it cuts
  /// marks its epoch pending on the graph atomically with issuance so
  /// snapshots pin to the cross-shard watermark. Pipelines sharing one log
  /// — even over different graphs — do not interfere: each marks only the
  /// epochs it will itself apply.
  IngestPipeline(GraphDeltaLog* log, DynamicHeteroGraph* graph,
                 IngestOptions options,
                 engine::DistributedGraphEngine* engine = nullptr);
  ~IngestPipeline();

  /// Must be called before Start().
  void AddUpdateListener(UpdateListener listener);

  void Start();

  /// Converts the session to events and enqueues them onto their owning
  /// shards. Blocks while queues are full; returns false after Stop().
  /// Events with out-of-range endpoints are dropped (counted per shard in
  /// Stats().rejected_unknown_node) — live logs routinely reference
  /// entities the graph has never ingested.
  bool Offer(const graph::SessionRecord& session);
  void OfferLog(const graph::SessionLog& log);

  /// Synchronously ingests a brand-new node (a cold-start item, a
  /// first-session user or query), growing the id-space online: appends one
  /// node(+edge) batch to the delta log — the graph allocates the id under
  /// the log's epoch lock — and applies it before returning, so the
  /// returned id is immediately valid for subsequent Offer() traffic and
  /// already visible to fresh snapshots. `edges` land in the same batch
  /// (one visibility instant) and may reference the new node with the -1
  /// placeholder endpoint. Runs under the same quiescence gate as the shard
  /// consumers, so a concurrent Compact() parks this too. Leave event.id
  /// unassigned (-1). Returns OutOfRange — counted per shard in
  /// Stats().rejected_capacity — when the graph's per-type capacity limit
  /// (DynamicHeteroGraphOptions::max_nodes_per_type) is exhausted; no id
  /// is burned in that case.
  StatusOr<graph::NodeId> OfferNewNode(NodeEvent event,
                                       std::vector<EdgeEvent> edges = {});

  /// Blocks until every offered event has been applied and listeners fired.
  void Flush();

  /// Flushes, closes the queues, and joins the consumers. Idempotent.
  void Stop();

  /// CompactionParticipant: parks shard consumers at a batch boundary (no
  /// batch mid-apply, none starting) until EndQuiesce. Queued events simply
  /// wait — they carry no epoch yet, so the compaction cannot split or drop
  /// them. Called by DynamicHeteroGraph::Compact(); also usable directly.
  void BeginQuiesce() override;
  void EndQuiesce() override;

  IngestStats Stats() const;
  int64_t events_dropped() const { return events_dropped_.Value(); }

 private:
  /// Queue element: the event plus its Offer() timestamp, so the consumer
  /// can report end-to-end batch latency and the per-shard freshness lag
  /// (age of the oldest event a batch applied).
  struct QueuedEvent {
    EdgeEvent ev;
    int64_t offer_us = 0;  // obs::MonotonicMicros() at enqueue
  };

  void ConsumerLoop(int shard);
  void CutBatch(int shard, std::vector<EdgeEvent> events,
                int64_t oldest_offer_us, bool queue_drained);
  void RegisterMetrics();

  GraphDeltaLog* log_;
  DynamicHeteroGraph* graph_;
  IngestOptions options_;
  engine::DistributedGraphEngine* engine_;
  obs::MetricsRegistry* registry_;  // resolved (never null)

  std::vector<UpdateListener> listeners_;
  std::vector<std::unique_ptr<BoundedQueue<QueuedEvent>>> queues_;
  std::vector<std::thread> consumers_;
  std::atomic<bool> started_{false};
  bool stopped_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;

  // Compaction quiescence handshake state.
  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
  int quiesce_requests_ = 0;  // active BeginQuiesce holds
  int active_applies_ = 0;    // consumers currently inside CutBatch

  // Registry-backed instruments (registered under "streaming." names; the
  // members keep Stats() an exact per-pipeline view).
  obs::Counter sessions_;
  obs::Counter events_offered_;
  obs::Counter events_applied_;
  obs::Counter events_dropped_;
  obs::Counter dropped_self_loop_;
  obs::Counter batches_;
  obs::Counter nodes_ingested_;
  obs::Counter rejected_unknown_node_total_;
  obs::Counter rejected_capacity_total_;
  /// Per-shard freshness lag gauge: age (µs) of the oldest event the
  /// shard's most recent batch applied, 0 once the shard drained its queue.
  std::vector<std::unique_ptr<obs::Gauge>> freshness_lag_;
  /// Max over shards, refreshed at every apply (the scrape-friendly
  /// aggregate "streaming.freshness_lag_us").
  obs::Gauge freshness_lag_max_;
  /// Registry-owned shared histograms (hot-path latencies).
  obs::Histogram* batch_latency_us_;     // offer -> applied, per batch
  obs::Histogram* node_mint_latency_us_; // OfferNewNode end-to-end
  /// (name, instrument) pairs to Unregister on destruction.
  std::vector<std::pair<std::string, const void*>> registered_;

  /// Round-robin shard for node batches (no prior traffic to co-locate
  /// with; the owning shard of the id is unknown until allocation).
  std::atomic<uint32_t> node_shard_rr_{0};
  /// Per-shard count of edge events dropped for an unknown endpoint.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> rejected_unknown_node_;
  /// Per-shard count of node mints rejected by per-type capacity.
  std::vector<std::unique_ptr<std::atomic<int64_t>>> rejected_capacity_;
};

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_INGEST_PIPELINE_H_
