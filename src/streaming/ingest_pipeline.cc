#include "streaming/ingest_pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/distributed_graph_engine.h"
#include "obs/trace.h"

namespace zoomer {
namespace streaming {

using graph::NodeId;

std::vector<EdgeEvent> SessionToEvents(const graph::SessionRecord& session) {
  std::vector<EdgeEvent> events;
  if (session.user >= 0 && session.query >= 0) {
    events.push_back({session.user, session.query,
                      graph::RelationKind::kClick, 1.0f, session.timestamp});
  }
  for (size_t i = 0; i < session.clicks.size(); ++i) {
    if (session.query >= 0 && session.clicks[i] >= 0) {
      events.push_back({session.query, session.clicks[i],
                        graph::RelationKind::kClick, 1.0f,
                        session.timestamp});
    }
    if (i + 1 < session.clicks.size() &&
        session.clicks[i] != session.clicks[i + 1]) {
      events.push_back({session.clicks[i], session.clicks[i + 1],
                        graph::RelationKind::kSession, 1.0f,
                        session.timestamp});
    }
  }
  return events;
}

IngestPipeline::IngestPipeline(GraphDeltaLog* log, DynamicHeteroGraph* graph,
                               IngestOptions options,
                               engine::DistributedGraphEngine* engine)
    : log_(log),
      graph_(graph),
      options_(options),
      engine_(engine),
      registry_(options.registry != nullptr ? options.registry
                                            : obs::MetricsRegistry::Global()) {
  ZCHECK(log_ != nullptr);
  ZCHECK(graph_ != nullptr);
  ZCHECK_GT(options_.num_shards, 0);
  ZCHECK_GT(options_.batch_size, 0);
  ZCHECK_EQ(options_.num_shards, log_->num_shards())
      << "pipeline and delta log must agree on sharding";
  for (int s = 0; s < options_.num_shards; ++s) {
    queues_.push_back(std::make_unique<BoundedQueue<QueuedEvent>>(
        static_cast<size_t>(options_.queue_capacity)));
    rejected_unknown_node_.push_back(
        std::make_unique<std::atomic<int64_t>>(0));
    rejected_capacity_.push_back(std::make_unique<std::atomic<int64_t>>(0));
    freshness_lag_.push_back(std::make_unique<obs::Gauge>());
  }
  batch_latency_us_ =
      registry_->GetHistogram("streaming.ingest_batch_latency_us");
  node_mint_latency_us_ =
      registry_->GetHistogram("streaming.node_mint_latency_us");
  RegisterMetrics();
  // Compaction quiescence: Compact() parks this pipeline at a batch
  // boundary instead of relying on a caller-managed Flush().
  graph_->AttachParticipant(this);
}

void IngestPipeline::RegisterMetrics() {
  auto counter = [this](const std::string& name, const obs::Counter* c) {
    registry_->RegisterCounter(name, c);
    registered_.emplace_back(name, c);
  };
  counter("streaming.sessions", &sessions_);
  counter("streaming.events_offered", &events_offered_);
  counter("streaming.events_applied", &events_applied_);
  counter("streaming.events_dropped", &events_dropped_);
  counter("streaming.dropped_self_loop", &dropped_self_loop_);
  counter("streaming.batches", &batches_);
  counter("streaming.nodes_ingested", &nodes_ingested_);
  counter("streaming.rejected_unknown_node", &rejected_unknown_node_total_);
  counter("streaming.rejected_capacity", &rejected_capacity_total_);
  registry_->RegisterGauge("streaming.freshness_lag_us", &freshness_lag_max_);
  registered_.emplace_back("streaming.freshness_lag_us", &freshness_lag_max_);
  for (int s = 0; s < options_.num_shards; ++s) {
    const std::string name =
        "streaming.freshness_lag_us.shard" + std::to_string(s);
    registry_->RegisterGauge(name, freshness_lag_[s].get());
    registered_.emplace_back(name, freshness_lag_[s].get());
  }
}

IngestPipeline::~IngestPipeline() {
  Stop();
  // Only after the consumers are joined: a registered view must outlive its
  // last writer, and the registry must stop seeing it before it dies.
  for (const auto& [name, ptr] : registered_) {
    registry_->Unregister(name, ptr);
  }
}

void IngestPipeline::AddUpdateListener(UpdateListener listener) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  ZCHECK(!started_) << "listeners must be registered before Start()";
  listeners_.push_back(std::move(listener));
}

void IngestPipeline::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  for (int s = 0; s < options_.num_shards; ++s) {
    consumers_.emplace_back([this, s] { ConsumerLoop(s); });
  }
}

bool IngestPipeline::Offer(const graph::SessionRecord& session) {
  ZCHECK(started_) << "call Start() before offering sessions";
  sessions_.Add(1);
  bool accepted_all = true;
  for (EdgeEvent& ev : SessionToEvents(session)) {
    // Validate against the *ingested* id-space (base + applied streamed
    // nodes) — a completed OfferNewNode's id is referencable immediately,
    // while an id still mid-mint on another thread is a counted drop here
    // rather than an ApplyBatch failure on the consumer.
    const bool src_known = graph_->IsNodeIngested(ev.src);
    const bool dst_known = graph_->IsNodeIngested(ev.dst);
    if (!src_known || !dst_known) {
      // Live logs reference entities never ingested; dropping is the
      // production behaviour, not an error — but an unobservable drop hides
      // every cold-start miss, so count it on the shard that would have
      // owned the batch.
      const graph::NodeId anchor = src_known ? ev.src : (dst_known ? ev.dst : 0);
      rejected_unknown_node_[engine::GraphShard::NodeShard(
                                 anchor, options_.num_shards)]
          ->fetch_add(1, std::memory_order_acq_rel);
      rejected_unknown_node_total_.Add(1);
      events_dropped_.Add(1);
      ZLOG_EVERY_N(WARNING, 1024)
          << "ingest: dropping edge event with unknown endpoint ("
          << ev.src << " -> " << ev.dst << "); total unknown-node drops: "
          << rejected_unknown_node_total_.Value();
      continue;
    }
    if (ev.src == ev.dst) {
      dropped_self_loop_.Add(1);
      events_dropped_.Add(1);
      ZLOG_EVERY_N(DEBUG, 4096)
          << "ingest: dropping self-loop on node " << ev.src
          << "; total self-loop drops: " << dropped_self_loop_.Value();
      continue;
    }
    const int shard =
        engine::GraphShard::NodeShard(ev.src, options_.num_shards);
    events_offered_.Add(1);
    if (!queues_[shard]->Push({std::move(ev), obs::MonotonicMicros()})) {
      events_offered_.Add(-1);
      accepted_all = false;  // queue closed (Stop raced the producer)
      ZLOG_EVERY_N(WARNING, 1024)
          << "ingest: event rejected after Stop() (queue closed)";
    }
  }
  return accepted_all;
}

StatusOr<graph::NodeId> IngestPipeline::OfferNewNode(
    NodeEvent event, std::vector<EdgeEvent> edges) {
  ZCHECK(started_) << "call Start() before offering nodes";
  WallTimer mint_timer;
  // Validate everything up front: once AppendWithNodes allocates the id,
  // the batch must apply (a rejected apply would strand an allocated,
  // never-applied record and freeze node visibility behind it).
  if (static_cast<int>(event.content.size()) !=
      graph_->base()->content_dim()) {
    return Status::InvalidArgument("node event content dim mismatch");
  }
  if (event.id >= 0) {
    return Status::InvalidArgument("leave NodeEvent::id unassigned");
  }
  for (const EdgeEvent& ev : edges) {
    for (const graph::NodeId endpoint : {ev.src, ev.dst}) {
      // Applied ids only (not merely allocated): ApplyBatch below must not
      // be able to fail after the id is burned.
      if (endpoint < -1 ||
          (endpoint >= 0 && !graph_->IsNodeIngested(endpoint))) {
        return Status::OutOfRange(
            "edge endpoint must be an ingested id or the -1 placeholder");
      }
    }
    if (ev.src == ev.dst) {
      return Status::InvalidArgument("self-loops are not allowed");
    }
    if (!(ev.weight >= 0.0f) || ev.weight > 1e30f) {
      return Status::InvalidArgument(
          "edge weight must be finite and non-negative");
    }
  }
  const int shard = static_cast<int>(node_shard_rr_.fetch_add(
                        1, std::memory_order_acq_rel)) %
                    options_.num_shards;
  std::vector<NodeEvent> nodes;
  nodes.push_back(std::move(event));
  // Producer-side apply honors the same quiescence gate as the shard
  // consumers: a concurrent Compact() parks node ingestion at a batch
  // boundary too.
  {
    std::unique_lock<std::mutex> lock(quiesce_mu_);
    quiesce_cv_.wait(lock, [this] { return quiesce_requests_ == 0; });
    ++active_applies_;
  }
  DeltaBatch batch;
  // The typed allocator enforces DynamicHeteroGraphOptions::
  // max_nodes_per_type inside the log's epoch section — a capacity
  // rejection happens before any id is burned or event recorded.
  StatusOr<uint64_t> epoch = log_->AppendWithNodes(
      shard, &nodes, &edges,
      [this](const std::vector<NodeEvent>& evs, uint64_t e) {
        return graph_->AllocateNodeIds(evs, e);
      },
      [this](uint64_t e) { graph_->NoteEpochIssued(e); });
  if (!epoch.ok()) {
    {
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      --active_applies_;
      if (active_applies_ == 0) quiesce_cv_.notify_all();
    }
    rejected_capacity_[shard]->fetch_add(1, std::memory_order_acq_rel);
    rejected_capacity_total_.Add(1);
    ZLOG_EVERY_N(WARNING, 256)
        << "ingest: node mint rejected (per-type capacity): "
        << epoch.status().ToString();
    return epoch.status();
  }
  batch.epoch = epoch.value();
  const graph::NodeId id = nodes[0].id;
  batch.node_events = std::move(nodes);
  batch.events = std::move(edges);  // placeholders resolved by the log
  Status st = graph_->ApplyBatch(batch);
  {
    std::lock_guard<std::mutex> lock(quiesce_mu_);
    --active_applies_;
    if (active_applies_ == 0) quiesce_cv_.notify_all();
  }
  ZCHECK(st.ok()) << st.ToString();  // everything was validated above

  std::vector<NodeId> touched;
  touched.push_back(id);
  for (const EdgeEvent& ev : batch.events) {
    touched.push_back(ev.src);
    touched.push_back(ev.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const UpdateListener& listener : listeners_) {
    listener(batch.epoch, touched);
  }

  if (engine_ != nullptr) {
    engine_->RecordShardUpdate(shard,
                               static_cast<int64_t>(batch.events.size()));
    // Node mints grow the global id-space: every shard's replicas must
    // replay them (gap-free id allocation), so publish to all buses.
    engine_->PublishDelta(shard, batch.epoch, /*all_shards=*/true);
  }
  batches_.Add(1);
  nodes_ingested_.Add(1);
  // Offered and applied move together (the apply was synchronous), so
  // Flush()'s applied >= offered invariant holds at every instant.
  events_applied_.Add(static_cast<int64_t>(batch.events.size()));
  events_offered_.Add(static_cast<int64_t>(batch.events.size()));
  node_mint_latency_us_->Record(
      static_cast<int64_t>(mint_timer.ElapsedMicros()));
  return id;
}

void IngestPipeline::OfferLog(const graph::SessionLog& log) {
  for (const auto& session : log) Offer(session);
}

void IngestPipeline::ConsumerLoop(int shard) {
  BoundedQueue<QueuedEvent>& queue = *queues_[shard];
  std::vector<EdgeEvent> batch;
  batch.reserve(options_.batch_size);
  QueuedEvent qe;
  // Blocking pop for the first event, then opportunistically drain up to
  // batch_size: batches grow under load (throughput) and stay small when
  // traffic is light (update-visibility latency).
  while (queue.Pop(&qe)) {
    // FIFO per shard: the first popped event is the batch's oldest, which
    // is what freshness lag measures.
    const int64_t oldest_offer_us = qe.offer_us;
    batch.push_back(std::move(qe.ev));
    while (static_cast<int>(batch.size()) < options_.batch_size &&
           queue.TryPop(&qe)) {
      batch.push_back(std::move(qe.ev));
    }
    // A short batch means TryPop hit an empty queue — the shard is caught
    // up, so its freshness lag drops to 0 after this apply.
    const bool queue_drained =
        static_cast<int>(batch.size()) < options_.batch_size;
    // Quiescence gate: a compaction in progress holds consumers here, with
    // the collected batch intact (it has no epoch yet), until EndQuiesce.
    {
      std::unique_lock<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.wait(lock, [this] { return quiesce_requests_ == 0; });
      ++active_applies_;
    }
    CutBatch(shard, std::move(batch), oldest_offer_us, queue_drained);
    {
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      --active_applies_;
      if (active_applies_ == 0) quiesce_cv_.notify_all();
    }
    batch.clear();
    batch.reserve(options_.batch_size);
  }
}

void IngestPipeline::BeginQuiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  ++quiesce_requests_;
  quiesce_cv_.wait(lock, [this] { return active_applies_ == 0; });
}

void IngestPipeline::EndQuiesce() {
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  --quiesce_requests_;
  quiesce_cv_.notify_all();
}

void IngestPipeline::CutBatch(int shard, std::vector<EdgeEvent> events,
                              int64_t oldest_offer_us, bool queue_drained) {
  obs::TraceSpan span("ingest_batch");
  const int64_t n = static_cast<int64_t>(events.size());
  span.set_attr(n);
  DeltaBatch batch;
  batch.events = std::move(events);
  // Cross-shard watermark: the epoch is marked pending on our graph
  // atomically with its issuance, before any later epoch can be assigned —
  // so snapshots never pin past this still-unapplied batch.
  batch.epoch = log_->Append(shard, batch.events,  // log keeps a copy
                             [this](uint64_t epoch) {
                               graph_->NoteEpochIssued(epoch);
                             });
  Status st = graph_->ApplyBatch(batch);
  ZCHECK(st.ok()) << st.ToString();  // events were validated at Offer

  std::vector<NodeId> touched;
  touched.reserve(batch.events.size() * 2);
  for (const EdgeEvent& ev : batch.events) {
    touched.push_back(ev.src);
    touched.push_back(ev.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const UpdateListener& listener : listeners_) {
    listener(batch.epoch, touched);
  }

  if (engine_ != nullptr) {
    engine_->RecordShardUpdate(shard, n);
    // Wake the owning shard's replica appliers (cross-shard dst endpoints
    // are covered by the appliers' poll interval).
    engine_->PublishDelta(shard, batch.epoch);
  }
  batches_.Add(1);
  events_applied_.Add(n);

  // Freshness telemetry: end-to-end age of the batch's oldest event at
  // apply completion. A drained queue means the shard is caught up — its
  // lag gauge reads 0 until the next backlog builds.
  const int64_t lag_us = obs::MonotonicMicros() - oldest_offer_us;
  batch_latency_us_->Record(lag_us);
  freshness_lag_[shard]->Set(queue_drained ? 0.0
                                           : static_cast<double>(lag_us));
  double max_lag = 0.0;
  for (const auto& gauge : freshness_lag_) {
    max_lag = std::max(max_lag, gauge->Value());
  }
  freshness_lag_max_.Set(max_lag);
}

void IngestPipeline::Flush() {
  while (events_applied_.Value() < events_offered_.Value()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void IngestPipeline::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ && !stopped_) {
    stopped_ = true;
    // Closing lets consumers drain what is queued, then exit.
    for (auto& q : queues_) q->Close();
    for (auto& t : consumers_) {
      if (t.joinable()) t.join();
    }
  }
  // Only after the consumers are gone: while they drain, a concurrent
  // Compact() must still be able to quiesce this pipeline.
  graph_->DetachParticipant(this);
}

IngestStats IngestPipeline::Stats() const {
  IngestStats stats;
  stats.sessions = sessions_.Value();
  stats.events = events_offered_.Value();
  stats.events_applied = events_applied_.Value();
  stats.batches = batches_.Value();
  stats.nodes_ingested = nodes_ingested_.Value();
  stats.last_epoch = log_->last_epoch();
  stats.rejected_unknown_node.reserve(rejected_unknown_node_.size());
  for (const auto& counter : rejected_unknown_node_) {
    stats.rejected_unknown_node.push_back(
        counter->load(std::memory_order_acquire));
  }
  stats.rejected_capacity.reserve(rejected_capacity_.size());
  for (const auto& counter : rejected_capacity_) {
    stats.rejected_capacity.push_back(
        counter->load(std::memory_order_acquire));
  }
  return stats;
}

}  // namespace streaming
}  // namespace zoomer
