#include "streaming/ingest_pipeline.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "engine/distributed_graph_engine.h"

namespace zoomer {
namespace streaming {

using graph::NodeId;

std::vector<EdgeEvent> SessionToEvents(const graph::SessionRecord& session) {
  std::vector<EdgeEvent> events;
  if (session.user >= 0 && session.query >= 0) {
    events.push_back({session.user, session.query,
                      graph::RelationKind::kClick, 1.0f, session.timestamp});
  }
  for (size_t i = 0; i < session.clicks.size(); ++i) {
    if (session.query >= 0 && session.clicks[i] >= 0) {
      events.push_back({session.query, session.clicks[i],
                        graph::RelationKind::kClick, 1.0f,
                        session.timestamp});
    }
    if (i + 1 < session.clicks.size() &&
        session.clicks[i] != session.clicks[i + 1]) {
      events.push_back({session.clicks[i], session.clicks[i + 1],
                        graph::RelationKind::kSession, 1.0f,
                        session.timestamp});
    }
  }
  return events;
}

IngestPipeline::IngestPipeline(GraphDeltaLog* log, DynamicHeteroGraph* graph,
                               IngestOptions options,
                               engine::DistributedGraphEngine* engine)
    : log_(log), graph_(graph), options_(options), engine_(engine) {
  ZCHECK(log_ != nullptr);
  ZCHECK(graph_ != nullptr);
  ZCHECK_GT(options_.num_shards, 0);
  ZCHECK_GT(options_.batch_size, 0);
  ZCHECK_EQ(options_.num_shards, log_->num_shards())
      << "pipeline and delta log must agree on sharding";
  for (int s = 0; s < options_.num_shards; ++s) {
    queues_.push_back(std::make_unique<BoundedQueue<EdgeEvent>>(
        static_cast<size_t>(options_.queue_capacity)));
  }
  // Compaction quiescence: Compact() parks this pipeline at a batch
  // boundary instead of relying on a caller-managed Flush().
  graph_->AttachParticipant(this);
}

IngestPipeline::~IngestPipeline() { Stop(); }

void IngestPipeline::AddUpdateListener(UpdateListener listener) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  ZCHECK(!started_) << "listeners must be registered before Start()";
  listeners_.push_back(std::move(listener));
}

void IngestPipeline::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  for (int s = 0; s < options_.num_shards; ++s) {
    consumers_.emplace_back([this, s] { ConsumerLoop(s); });
  }
}

bool IngestPipeline::Offer(const graph::SessionRecord& session) {
  ZCHECK(started_) << "call Start() before offering sessions";
  const int64_t num_nodes = graph_->base()->num_nodes();
  sessions_.fetch_add(1, std::memory_order_acq_rel);
  bool accepted_all = true;
  for (EdgeEvent& ev : SessionToEvents(session)) {
    if (ev.src < 0 || ev.src >= num_nodes || ev.dst < 0 ||
        ev.dst >= num_nodes || ev.src == ev.dst) {
      // Live logs reference entities the offline build never saw; dropping
      // (with a counter) is the production behaviour, not an error.
      events_dropped_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    const int shard =
        engine::GraphShard::NodeShard(ev.src, options_.num_shards);
    events_offered_.fetch_add(1, std::memory_order_acq_rel);
    if (!queues_[shard]->Push(std::move(ev))) {
      events_offered_.fetch_sub(1, std::memory_order_acq_rel);
      accepted_all = false;  // queue closed (Stop raced the producer)
    }
  }
  return accepted_all;
}

void IngestPipeline::OfferLog(const graph::SessionLog& log) {
  for (const auto& session : log) Offer(session);
}

void IngestPipeline::ConsumerLoop(int shard) {
  BoundedQueue<EdgeEvent>& queue = *queues_[shard];
  std::vector<EdgeEvent> batch;
  batch.reserve(options_.batch_size);
  EdgeEvent ev;
  // Blocking pop for the first event, then opportunistically drain up to
  // batch_size: batches grow under load (throughput) and stay small when
  // traffic is light (update-visibility latency).
  while (queue.Pop(&ev)) {
    batch.push_back(std::move(ev));
    while (static_cast<int>(batch.size()) < options_.batch_size &&
           queue.TryPop(&ev)) {
      batch.push_back(std::move(ev));
    }
    // Quiescence gate: a compaction in progress holds consumers here, with
    // the collected batch intact (it has no epoch yet), until EndQuiesce.
    {
      std::unique_lock<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.wait(lock, [this] { return quiesce_requests_ == 0; });
      ++active_applies_;
    }
    CutBatch(shard, std::move(batch));
    {
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      --active_applies_;
      if (active_applies_ == 0) quiesce_cv_.notify_all();
    }
    batch.clear();
    batch.reserve(options_.batch_size);
  }
}

void IngestPipeline::BeginQuiesce() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  ++quiesce_requests_;
  quiesce_cv_.wait(lock, [this] { return active_applies_ == 0; });
}

void IngestPipeline::EndQuiesce() {
  std::lock_guard<std::mutex> lock(quiesce_mu_);
  --quiesce_requests_;
  quiesce_cv_.notify_all();
}

void IngestPipeline::CutBatch(int shard, std::vector<EdgeEvent> events) {
  const int64_t n = static_cast<int64_t>(events.size());
  DeltaBatch batch;
  batch.events = std::move(events);
  // Cross-shard watermark: the epoch is marked pending on our graph
  // atomically with its issuance, before any later epoch can be assigned —
  // so snapshots never pin past this still-unapplied batch.
  batch.epoch = log_->Append(shard, batch.events,  // log keeps a copy
                             [this](uint64_t epoch) {
                               graph_->NoteEpochIssued(epoch);
                             });
  Status st = graph_->ApplyBatch(batch);
  ZCHECK(st.ok()) << st.ToString();  // events were validated at Offer

  std::vector<NodeId> touched;
  touched.reserve(batch.events.size() * 2);
  for (const EdgeEvent& ev : batch.events) {
    touched.push_back(ev.src);
    touched.push_back(ev.dst);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const UpdateListener& listener : listeners_) listener(touched);

  if (engine_ != nullptr) {
    engine_->RecordShardUpdate(shard, n);
  }
  batches_.fetch_add(1, std::memory_order_acq_rel);
  events_applied_.fetch_add(n, std::memory_order_acq_rel);
}

void IngestPipeline::Flush() {
  while (events_applied_.load(std::memory_order_acquire) <
         events_offered_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void IngestPipeline::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ && !stopped_) {
    stopped_ = true;
    // Closing lets consumers drain what is queued, then exit.
    for (auto& q : queues_) q->Close();
    for (auto& t : consumers_) {
      if (t.joinable()) t.join();
    }
  }
  // Only after the consumers are gone: while they drain, a concurrent
  // Compact() must still be able to quiesce this pipeline.
  graph_->DetachParticipant(this);
}

IngestStats IngestPipeline::Stats() const {
  IngestStats stats;
  stats.sessions = sessions_.load(std::memory_order_acquire);
  stats.events = events_offered_.load(std::memory_order_acquire);
  stats.events_applied = events_applied_.load(std::memory_order_acquire);
  stats.batches = batches_.load(std::memory_order_acquire);
  stats.last_epoch = log_->last_epoch();
  return stats;
}

}  // namespace streaming
}  // namespace zoomer
