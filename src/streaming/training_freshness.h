// Training-freshness wiring (ROADMAP: "delta-aware ROI sampling so training
// — not just serving — sees fresh edges"). One call connects the four ends:
//   - the model's ROI sampler reads through the dynamic GraphView,
//   - the ingest pipeline's update hook signals the trainer that new delta
//     batches landed,
//   - the trainer re-pins the view at the next minibatch boundary, so
//     mini-batches drawn mid-ingest score freshly arrived clicks without an
//     intervening Compact().
// Must run before pipeline->Start() (listener registration requirement).
// The view is read/refreshed only on the training thread; ingest threads
// only bump an atomic counter.
#ifndef ZOOMER_STREAMING_TRAINING_FRESHNESS_H_
#define ZOOMER_STREAMING_TRAINING_FRESHNESS_H_

#include "core/trainer.h"
#include "core/zoomer_model.h"
#include "streaming/dynamic_graph_view.h"
#include "streaming/ingest_pipeline.h"

namespace zoomer {
namespace streaming {

/// Attaches `view` to the model, registers the trainer's update signal as a
/// pipeline listener, and installs the view-refresh hook on the trainer.
/// All four objects must outlive the training run.
void AttachTrainingFreshness(core::ZoomerModel* model,
                             core::ZoomerTrainer* trainer,
                             DynamicGraphView* view, IngestPipeline* pipeline);

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_TRAINING_FRESHNESS_H_
