// Append-only log of streaming edge events (paper Sec. VI: the production
// deployment continuously re-ingests Taobao behavior logs; here the log is
// the durable record between the ingestion pipeline and the dynamic graph
// view). The log is sharded the same way the distributed graph engine
// hash-partitions nodes, so one log shard feeds one graph shard. Every
// appended batch receives a globally monotonically increasing epoch; epochs
// are the unit of snapshot isolation in DynamicHeteroGraph and the replay
// cursor for recovery (ReadSince).
#ifndef ZOOMER_STREAMING_GRAPH_DELTA_LOG_H_
#define ZOOMER_STREAMING_GRAPH_DELTA_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/hetero_graph.h"
#include "streaming/edge_decay.h"

namespace zoomer {
namespace streaming {

/// One streaming half-edge-pair event: an undirected edge (src, dst) of the
/// given relation kind observed online (a click, a session adjacency, or a
/// freshly computed similarity pair). Endpoints may use the placeholder
/// convention -1-k to reference the k-th NodeEvent of the same batch (see
/// AppendWithNodes), resolved to the freshly assigned id at append time.
struct EdgeEvent {
  graph::NodeId src = -1;
  graph::NodeId dst = -1;
  graph::RelationKind kind = graph::RelationKind::kClick;
  float weight = 1.0f;
  int64_t timestamp = 0;  // seconds, event time
};

/// A brand-new node observed online (id-space growth): a cold-start item,
/// a first-session user, or a never-seen query. Carries everything the
/// offline builder's AddNode takes; `id` is assigned by AppendWithNodes
/// through the graph's allocator (leave it -1) so overlay ids stay monotone
/// in birth epoch — the invariant epoch-pinned num_nodes() relies on.
struct NodeEvent {
  graph::NodeId id = -1;
  graph::NodeType type = graph::NodeType::kItem;
  std::vector<float> content;      // content_dim floats
  std::vector<int64_t> slots;      // categorical feature-slot ids
  int64_t timestamp = 0;           // seconds, event time
};

/// A batch of events stamped with the epoch the log assigned on append.
/// Node events apply before edge events, so one batch can introduce a node
/// and its first edges atomically (same epoch = same visibility instant).
struct DeltaBatch {
  uint64_t epoch = 0;
  std::vector<EdgeEvent> events;
  std::vector<NodeEvent> node_events;
};

struct DeltaLogStats {
  uint64_t last_epoch = 0;
  int64_t total_events = 0;
  int64_t total_node_events = 0;
  int64_t total_batches = 0;
  std::vector<int64_t> events_per_shard;
};

/// Sharded append-only event log. Appends are serialized per shard; epoch
/// assignment is a single global atomic so epochs order batches across
/// shards. Batches are retained in memory (this reproduction has no disk
/// tier) until Truncate() releases everything up to a compaction epoch.
class GraphDeltaLog {
 public:
  explicit GraphDeltaLog(int num_shards = 4);

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Appends a batch to `shard` and returns its freshly assigned epoch.
  /// Events are moved into the log; the returned epoch is > every epoch
  /// returned by earlier Append calls (across all shards).
  ///
  /// `on_issue`, when provided, is invoked with the new epoch atomically
  /// with its assignment (i.e. before any later epoch can be issued). The
  /// appender that will apply the batch passes its graph's
  /// DynamicHeteroGraph::NoteEpochIssued here so snapshots pin to the
  /// cross-shard watermark — per-call, so pipelines feeding *different*
  /// graphs from one shared log only mark the epochs they will themselves
  /// apply (the ingest pipeline wires this automatically).
  using EpochObserver = std::function<void(uint64_t epoch)>;
  uint64_t Append(int shard, std::vector<EdgeEvent> events,
                  const EpochObserver& on_issue = {});

  /// Assigns one fresh node id per event, all born at `epoch`, and returns
  /// the first id of the contiguous range — or an error (per-type capacity
  /// exhausted) in which case nothing was allocated. Pass the typed
  /// DynamicHeteroGraph::AllocateNodeIds overload (the ingest pipeline
  /// wires this): the log invokes it inside the same critical section that
  /// orders epoch issuance, so overlay ids are monotone in birth epoch
  /// across shards and threads, and capacity rejection happens before any
  /// id is burned.
  using NodeIdAllocator = std::function<StatusOr<graph::NodeId>(
      const std::vector<NodeEvent>& nodes, uint64_t epoch)>;

  /// Appends a batch that grows the id-space: every NodeEvent in `*nodes`
  /// with id -1 receives a freshly allocated id (written back to the
  /// caller's vector), and edge endpoints using the -1-k placeholder are
  /// resolved to the k-th node's new id (also in place, so the caller can
  /// ApplyBatch the same data the log recorded). `edges` may be null for a
  /// node-only batch. Epoch semantics match Append. A rejected allocation
  /// (per-type capacity) propagates without recording anything — the
  /// already-issued epoch becomes a harmless hole in the sequence (never
  /// marked pending, never applied).
  StatusOr<uint64_t> AppendWithNodes(int shard, std::vector<NodeEvent>* nodes,
                                     std::vector<EdgeEvent>* edges,
                                     const NodeIdAllocator& alloc,
                                     const EpochObserver& on_issue = {});

  // ---- durable tee (persist::DeltaLogPersister) ---------------------------

  /// Observer invoked with every recorded batch, under its shard's lock and
  /// after the batch is in the in-memory log — the tee the WAL persister
  /// hangs off so Append returning implies the batch is (at least buffered)
  /// on its way to disk. Because the call runs inside the shard critical
  /// section, per-shard WAL order matches log order; across shards records
  /// may interleave out of epoch order, which recovery resolves by sorting
  /// (exactly as ReadSince does). Pass an empty function to detach. The
  /// observer must not call back into this log.
  using AppendObserver = std::function<void(int shard,
                                            const DeltaBatch& batch)>;
  void SetAppendObserver(AppendObserver observer);

  /// Recovery-only: re-inserts a batch replayed from the WAL with its
  /// *original* epoch (never re-issued), so a recovered process's in-memory
  /// log carries the same tail a survivor's would — replica revival and
  /// consumer cursors keep working across a restart. Advances the epoch
  /// sequence past the restored epoch. Batches must be restored in epoch
  /// order per shard; the append observer is not invoked (the tail is
  /// already durable). Rejects epoch 0.
  Status RestoreBatch(int shard, DeltaBatch batch);

  /// Raises the epoch sequence so every future append is issued above
  /// `epoch`. Recovery calls this with the checkpoint epoch even when the
  /// WAL tail is empty — a fresh log restarting at epoch 1 would collide
  /// with the epochs already folded into the recovered base.
  void AdvanceEpochFloor(uint64_t epoch);

  /// Epoch of the most recent append, 0 if the log is empty.
  uint64_t last_epoch() const {
    return next_epoch_.load(std::memory_order_acquire) - 1;
  }

  /// All batches with epoch > `epoch`, across shards, sorted by epoch.
  /// Replay cursor for recovery and for rebuilding a dynamic view.
  std::vector<DeltaBatch> ReadSince(uint64_t epoch) const;

  /// Bounded replay read: batches with `epoch` < batch epoch <= `max_epoch`,
  /// sorted. Replica appliers bound reads by the primary graph's watermark —
  /// a watermark-covered epoch is guaranteed fully appended (batches are
  /// inserted into their shard vector outside the epoch lock, so an
  /// unbounded read could observe epoch N+1 before N lands).
  std::vector<DeltaBatch> ReadSince(uint64_t epoch, uint64_t max_epoch) const;

  // ---- replay consumers (replica apply cursors) ---------------------------
  // Each replica of the distributed engine owns a cursor into this log.
  // While a consumer is registered, Truncate/TruncateExpired clamp to the
  // minimum cursor, so a lagging — or killed — replica's replay tail
  // survives until it catches up (or is unregistered). This is what makes
  // ReviveReplica's "rebuild by replaying from the last watermark" safe
  // against concurrent fold-driven truncation.

  /// Registers a consumer whose cursor starts at `start_epoch` (it still
  /// needs every batch with epoch > start_epoch). Returns the consumer id.
  int RegisterConsumer(uint64_t start_epoch = 0);

  /// Advances the consumer's cursor (monotone; lower values are ignored).
  void AdvanceConsumer(int id, uint64_t epoch);

  /// Drops the consumer; its cursor no longer pins retention.
  void UnregisterConsumer(int id);

  uint64_t ConsumerCursor(int id) const;

  /// Smallest registered cursor, or UINT64_MAX when no consumer is
  /// registered — the retention floor Truncate/TruncateExpired respect.
  uint64_t MinConsumerEpoch() const;

  /// Drops batches with epoch <= `epoch` (called after compaction folds
  /// them into the base CSR — with incremental segment folds, pass
  /// DynamicHeteroGraph::SafeTruncateEpoch()). Clamped to
  /// MinConsumerEpoch(): a registered replay consumer's unconsumed tail is
  /// never dropped, however far compaction has folded.
  void Truncate(uint64_t epoch);

  /// TTL-driven truncation (ROADMAP: "TTL'd truncation of the in-memory
  /// delta log itself"): drops edge-only batches with epoch <= `max_epoch`
  /// whose every event has aged past its relation kind's TTL at
  /// `now_seconds`. Such entries are invisible to every decay-aware reader
  /// and already swept from the overlay, so a quiet stream no longer pins
  /// them until the next fold. Node-minting batches are exempt — they are
  /// the id-space record later surviving edge batches may reference on a
  /// fresh replay; only fold-driven Truncate() retires them. Pass the
  /// graph's watermark_epoch() as `max_epoch` so an issued-but-unapplied
  /// batch is never dropped; `max_epoch` is additionally clamped to
  /// MinConsumerEpoch() so replay consumers keep their tails. Returns the
  /// number of batches dropped.
  int64_t TruncateExpired(const streaming::DecaySpec& spec,
                          int64_t now_seconds, uint64_t max_epoch);

  DeltaLogStats Stats() const;
  size_t MemoryBytes() const;

 private:
  /// Runs the attached append observer (if any); caller holds the shard's
  /// lock so the tee sees batches in shard order.
  void NotifyAppendLocked(int shard, const DeltaBatch& batch);

  struct Shard {
    mutable std::mutex mu;
    std::vector<DeltaBatch> batches;  // epoch-ordered within the shard
    int64_t events = 0;
    int64_t node_events = 0;
  };

  std::atomic<uint64_t> next_epoch_{1};
  /// Replay-consumer cursors (consumer id -> last consumed epoch).
  mutable std::mutex consumers_mu_;
  std::vector<std::pair<int, uint64_t>> consumers_;  // guarded above
  int next_consumer_id_ = 0;                         // guarded above
  /// Serializes epoch issuance with the on_issue notification: a later
  /// epoch cannot be issued (let alone applied) before an earlier one is
  /// reported pending, which the watermark correctness argument relies on.
  mutable std::mutex epoch_mu_;
  /// Durable tee; read under shared lock on every append, swapped under
  /// exclusive lock (attach/detach are rare — process start and teardown).
  mutable std::shared_mutex observer_mu_;
  AppendObserver append_observer_;  // guarded by observer_mu_
  std::vector<Shard> shards_;
};

}  // namespace streaming
}  // namespace zoomer

#endif  // ZOOMER_STREAMING_GRAPH_DELTA_LOG_H_
