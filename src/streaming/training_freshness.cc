#include "streaming/training_freshness.h"

#include "common/logging.h"

namespace zoomer {
namespace streaming {

void AttachTrainingFreshness(core::ZoomerModel* model,
                             core::ZoomerTrainer* trainer,
                             DynamicGraphView* view,
                             IngestPipeline* pipeline) {
  ZCHECK(model != nullptr);
  ZCHECK(trainer != nullptr);
  ZCHECK(view != nullptr);
  ZCHECK(pipeline != nullptr);
  model->AttachGraphView(view);
  pipeline->AddUpdateListener(
      [trainer](uint64_t /*epoch*/, const std::vector<graph::NodeId>&) {
        trainer->NotifyGraphUpdate();
      });
  trainer->SetGraphRefreshHook([view] { return view->Refresh(); });
}

}  // namespace streaming
}  // namespace zoomer
