#include "streaming/graph_delta_log.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace zoomer {
namespace streaming {

GraphDeltaLog::GraphDeltaLog(int num_shards)
    : shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {}

uint64_t GraphDeltaLog::Append(int shard, std::vector<EdgeEvent> events,
                               const EpochObserver& on_issue) {
  ZCHECK(shard >= 0 && shard < num_shards());
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch = next_epoch_.fetch_add(1, std::memory_order_acq_rel);
    if (on_issue) on_issue(epoch);
  }
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  s.events += static_cast<int64_t>(events.size());
  DeltaBatch batch;
  batch.epoch = epoch;
  batch.events = std::move(events);
  s.batches.push_back(std::move(batch));
  NotifyAppendLocked(shard, s.batches.back());
  return epoch;
}

StatusOr<uint64_t> GraphDeltaLog::AppendWithNodes(
    int shard, std::vector<NodeEvent>* nodes, std::vector<EdgeEvent>* edges,
    const NodeIdAllocator& alloc, const EpochObserver& on_issue) {
  ZCHECK(shard >= 0 && shard < num_shards());
  ZCHECK(nodes != nullptr && !nodes->empty());
  ZCHECK(alloc != nullptr);
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    epoch = next_epoch_.fetch_add(1, std::memory_order_acq_rel);
    // Ids are allocated under the same lock that orders epoch issuance, so
    // overlay node ids are monotone in birth epoch — the prefix-visibility
    // invariant behind the snapshot-pinned num_nodes(). A capacity
    // rejection leaves only an epoch hole: nothing allocated, recorded, or
    // marked pending.
    for (const NodeEvent& nv : *nodes) {
      ZCHECK(nv.id < 0) << "node event already carries an id";
    }
    StatusOr<graph::NodeId> first = alloc(*nodes, epoch);
    if (!first.ok()) return first.status();
    for (size_t i = 0; i < nodes->size(); ++i) {
      (*nodes)[i].id = first.value() + static_cast<graph::NodeId>(i);
    }
    if (edges != nullptr) {
      // Placeholder endpoints -1-k refer to the k-th node of this batch.
      auto resolve = [&](graph::NodeId endpoint) {
        if (endpoint >= 0) return endpoint;
        const size_t k = static_cast<size_t>(-1 - endpoint);
        ZCHECK(k < nodes->size()) << "edge placeholder out of range";
        return (*nodes)[k].id;
      };
      for (EdgeEvent& ev : *edges) {
        ev.src = resolve(ev.src);
        ev.dst = resolve(ev.dst);
      }
    }
    if (on_issue) on_issue(epoch);
  }
  Shard& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  DeltaBatch batch;
  batch.epoch = epoch;
  batch.node_events = *nodes;  // log keeps a copy; caller applies its own
  if (edges != nullptr) batch.events = *edges;
  s.events += static_cast<int64_t>(batch.events.size());
  s.node_events += static_cast<int64_t>(batch.node_events.size());
  s.batches.push_back(std::move(batch));
  NotifyAppendLocked(shard, s.batches.back());
  return epoch;
}

void GraphDeltaLog::SetAppendObserver(AppendObserver observer) {
  std::unique_lock<std::shared_mutex> lock(observer_mu_);
  append_observer_ = std::move(observer);
}

void GraphDeltaLog::NotifyAppendLocked(int shard, const DeltaBatch& batch) {
  std::shared_lock<std::shared_mutex> lock(observer_mu_);
  if (append_observer_) append_observer_(shard, batch);
}

Status GraphDeltaLog::RestoreBatch(int shard, DeltaBatch batch) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("restore shard out of range");
  }
  if (batch.epoch == 0) {
    return Status::InvalidArgument("cannot restore a batch without an epoch");
  }
  const uint64_t epoch = batch.epoch;
  Shard& s = shards_[shard];
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.batches.empty() && s.batches.back().epoch >= epoch) {
      return Status::InvalidArgument(
          "restored batches must arrive in epoch order per shard");
    }
    s.events += static_cast<int64_t>(batch.events.size());
    s.node_events += static_cast<int64_t>(batch.node_events.size());
    s.batches.push_back(std::move(batch));
  }
  AdvanceEpochFloor(epoch);
  return Status::OK();
}

void GraphDeltaLog::AdvanceEpochFloor(uint64_t epoch) {
  // Under epoch_mu_ so a concurrent Append cannot interleave with the
  // floor raise and hand out a stale epoch.
  std::lock_guard<std::mutex> lock(epoch_mu_);
  uint64_t cur = next_epoch_.load(std::memory_order_relaxed);
  while (cur < epoch + 1 && !next_epoch_.compare_exchange_weak(
                                cur, epoch + 1, std::memory_order_acq_rel)) {
  }
}

std::vector<DeltaBatch> GraphDeltaLog::ReadSince(uint64_t epoch) const {
  return ReadSince(epoch, std::numeric_limits<uint64_t>::max());
}

std::vector<DeltaBatch> GraphDeltaLog::ReadSince(uint64_t epoch,
                                                 uint64_t max_epoch) const {
  std::vector<DeltaBatch> out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    for (const DeltaBatch& b : s.batches) {
      if (b.epoch > epoch && b.epoch <= max_epoch) out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DeltaBatch& a, const DeltaBatch& b) {
              return a.epoch < b.epoch;
            });
  return out;
}

int GraphDeltaLog::RegisterConsumer(uint64_t start_epoch) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  const int id = next_consumer_id_++;
  consumers_.emplace_back(id, start_epoch);
  return id;
}

void GraphDeltaLog::AdvanceConsumer(int id, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  for (auto& [cid, cursor] : consumers_) {
    if (cid == id) {
      cursor = std::max(cursor, epoch);
      return;
    }
  }
}

void GraphDeltaLog::UnregisterConsumer(int id) {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  consumers_.erase(std::remove_if(consumers_.begin(), consumers_.end(),
                                  [id](const std::pair<int, uint64_t>& c) {
                                    return c.first == id;
                                  }),
                   consumers_.end());
}

uint64_t GraphDeltaLog::ConsumerCursor(int id) const {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  for (const auto& [cid, cursor] : consumers_) {
    if (cid == id) return cursor;
  }
  return 0;
}

uint64_t GraphDeltaLog::MinConsumerEpoch() const {
  std::lock_guard<std::mutex> lock(consumers_mu_);
  uint64_t min_cursor = std::numeric_limits<uint64_t>::max();
  for (const auto& [cid, cursor] : consumers_) {
    (void)cid;
    min_cursor = std::min(min_cursor, cursor);
  }
  return min_cursor;
}

int64_t GraphDeltaLog::TruncateExpired(const streaming::DecaySpec& spec,
                                       int64_t now_seconds,
                                       uint64_t max_epoch) {
  if (!spec.has_ttl()) return 0;
  // A registered replay consumer (a replica's apply cursor) pins everything
  // past its cursor, dead or alive — revival replays exactly this tail.
  max_epoch = std::min(max_epoch, MinConsumerEpoch());
  int64_t dropped = 0;
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto keep = std::remove_if(
        s.batches.begin(), s.batches.end(), [&](const DeltaBatch& b) {
          if (b.epoch > max_epoch) return false;  // possibly unapplied
          // Node-minting batches are the id-space record: a later surviving
          // edge batch may reference the minted ids, and ReadSince replay
          // onto a fresh graph would reject those edges if the mint were
          // gone — so node batches never TTL out of the middle of the log
          // (only a fold-driven Truncate retires them, with the ids safely
          // in the folded base).
          if (!b.node_events.empty()) return false;
          for (const EdgeEvent& ev : b.events) {
            if (!spec.Expired(ev.kind, now_seconds - ev.timestamp)) {
              return false;
            }
          }
          s.events -= static_cast<int64_t>(b.events.size());
          ++dropped;
          return true;
        });
    s.batches.erase(keep, s.batches.end());
  }
  if (dropped > 0) {
    ZLOG_EVERY_N(DEBUG, 16) << "delta-log TTL truncation dropped " << dropped
                            << " fully-expired batches (<= epoch "
                            << max_epoch << ")";
  }
  return dropped;
}

void GraphDeltaLog::Truncate(uint64_t epoch) {
  epoch = std::min(epoch, MinConsumerEpoch());
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto keep = std::remove_if(s.batches.begin(), s.batches.end(),
                               [epoch, &s](const DeltaBatch& b) {
                                 if (b.epoch <= epoch) {
                                   s.events -= static_cast<int64_t>(b.events.size());
                                   s.node_events -=
                                       static_cast<int64_t>(b.node_events.size());
                                   return true;
                                 }
                                 return false;
                               });
    s.batches.erase(keep, s.batches.end());
  }
}

DeltaLogStats GraphDeltaLog::Stats() const {
  DeltaLogStats stats;
  stats.last_epoch = last_epoch();
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    stats.total_events += s.events;
    stats.total_node_events += s.node_events;
    stats.total_batches += static_cast<int64_t>(s.batches.size());
    stats.events_per_shard.push_back(s.events);
  }
  return stats;
}

size_t GraphDeltaLog::MemoryBytes() const {
  size_t bytes = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    bytes += s.batches.size() * sizeof(DeltaBatch);
    for (const DeltaBatch& b : s.batches) {
      bytes += b.events.size() * sizeof(EdgeEvent);
      for (const NodeEvent& nv : b.node_events) {
        bytes += sizeof(NodeEvent) + nv.content.size() * sizeof(float) +
                 nv.slots.size() * sizeof(int64_t);
      }
    }
  }
  return bytes;
}

}  // namespace streaming
}  // namespace zoomer
