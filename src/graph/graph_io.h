// Compact binary serialization of heterogeneous graphs (paper Sec. VI: the
// graph generator writes graphs as "compact binary-format files" into HDFS
// for the graph engine to load). Format: little-endian, versioned header,
// node sections (types, contents, slots) then the edge list; the CSR and
// alias tables are rebuilt on load.
#ifndef ZOOMER_GRAPH_GRAPH_IO_H_
#define ZOOMER_GRAPH_GRAPH_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "graph/hetero_graph.h"
#include "graph/segmented_csr.h"

namespace zoomer {
namespace graph {

/// Writes the graph to `path`. Overwrites existing files.
Status SaveGraph(const HeteroGraph& g, const std::string& path);

/// Loads a graph written by SaveGraph. Validates magic, version, and
/// structural invariants before returning.
StatusOr<HeteroGraph> LoadGraph(const std::string& path);

/// Writes one checkpoint segment file: header (magic, version, payload
/// CRC-32, payload size) followed by the segment's raw arrays. The alias
/// tables are NOT serialized — they rebuild deterministically from the
/// stored weights, in order, so a loaded segment samples bit-identically.
Status SaveCsrSegment(const CsrSegment& seg, const std::string& path);

/// Loads a segment written by SaveCsrSegment. Verifies the CRC and every
/// structural invariant (offset monotonicity, typed sub-range bounds, enum
/// ranges) before returning — a truncated or corrupted file yields a clear
/// Status, never a partially valid segment.
StatusOr<std::shared_ptr<const CsrSegment>> LoadCsrSegment(
    const std::string& path);

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_GRAPH_IO_H_
