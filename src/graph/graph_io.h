// Compact binary serialization of heterogeneous graphs (paper Sec. VI: the
// graph generator writes graphs as "compact binary-format files" into HDFS
// for the graph engine to load). Format: little-endian, versioned header,
// node sections (types, contents, slots) then the edge list; the CSR and
// alias tables are rebuilt on load.
#ifndef ZOOMER_GRAPH_GRAPH_IO_H_
#define ZOOMER_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace graph {

/// Writes the graph to `path`. Overwrites existing files.
Status SaveGraph(const HeteroGraph& g, const std::string& path);

/// Loads a graph written by SaveGraph. Validates magic, version, and
/// structural invariants before returning.
StatusOr<HeteroGraph> LoadGraph(const std::string& path);

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_GRAPH_IO_H_
