// Raw behavior-log records: the input format of the graph generator
// (paper Sec. VI "Graph generator": ODPS parses customer-platform interaction
// logs into heterogeneous graphs). A session is one user searching one query
// and clicking an ordered list of items.
#ifndef ZOOMER_GRAPH_SESSION_LOG_H_
#define ZOOMER_GRAPH_SESSION_LOG_H_

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.h"

namespace zoomer {
namespace graph {

/// One search session: user u posed query q and clicked `clicks` in order.
struct SessionRecord {
  NodeId user = -1;
  NodeId query = -1;
  std::vector<NodeId> clicks;
  int64_t timestamp = 0;  // seconds; used to window 1-hour vs 1-day graphs
};

using SessionLog = std::vector<SessionRecord>;

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_SESSION_LOG_H_
