// Node-partitioned CSR storage (ROADMAP maintenance follow-up: "incremental
// compaction — fold only hot shards instead of a full CSR rebuild"). The
// monolithic HeteroGraph stays the offline build artifact; the *serving*
// base of the streaming subsystem is a SegmentedCsr: the id-space is cut
// into fixed-span contiguous row ranges ("segments"), each an independently
// rebuildable immutable CsrSegment with its own generation.
//
// Why this shape:
//  - A fold that absorbs the delta overlay of a few hot segments rebuilds
//    only those CsrSegments; every untouched segment is *shared* (by
//    shared_ptr) between the old and new SegmentedCsr. Snapshots pin the
//    whole SegmentedCsr, so zero-copy spans handed out for untouched
//    segments stay valid across any number of incremental folds — the
//    persistent-data-structure property the GraphView/snapshot contracts
//    rely on.
//  - Per-segment generations let caches (maintenance::HotNodeOverlayCache)
//    stamp entries with the generation of the one segment that backs a
//    node, so an incremental fold invalidates only the folded ranges
//    instead of flushing the whole cache.
//  - Neighbor ids are global: an edge folded into segment A may reference a
//    row of segment B (or an overlay-born node not yet folded at all);
//    readers resolve the endpoint independently, exactly as the delta
//    overlay always did. Row payloads (type/content/slots) and neighbor
//    blocks mirror HeteroGraph's layout — blocks sorted by (neighbor type,
//    kind, id) with typed sub-ranges and a per-row alias table — so the
//    read API is call-compatible with HeteroGraph and TypedCsrBlock /
//    sampler code templates over either.
#ifndef ZOOMER_GRAPH_SEGMENTED_CSR_H_
#define ZOOMER_GRAPH_SEGMENTED_CSR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/alias_table.h"
#include "graph/graph_view.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace graph {

class CsrSegment;

// Checkpoint serializers (persist layer, implemented in graph_io.cc); they
// need raw-array access so a loaded segment is byte-identical to the saved
// one — re-sorting or re-deriving anything on load would break the
// bit-identical recovery contract.
Status SaveCsrSegment(const CsrSegment& seg, const std::string& path);
StatusOr<std::shared_ptr<const CsrSegment>> LoadCsrSegment(
    const std::string& path);

/// One immutable row range [first_node, first_node + num_rows) of the
/// segmented CSR. Self-contained (owns its arrays): rebuilding a segment
/// never touches its neighbors, and sharing one between two SegmentedCsr
/// epochs is a shared_ptr copy.
class CsrSegment {
 public:
  NodeId first_node() const { return first_node_; }
  int64_t num_rows() const { return static_cast<int64_t>(types_.size()); }
  /// Monotonic rebuild stamp: bumped every time a fold replaces this row
  /// range. Caches key their per-node entries on it.
  uint64_t generation() const { return generation_; }
  /// Epoch this segment's rows last folded through (0 = the offline
  /// partition, never folded). Overlay entries of these rows with epoch <=
  /// folded_epoch and a neighbor born at or below it are already absorbed
  /// into the rows — the per-segment replay floor crash recovery filters
  /// WAL half-edges against.
  uint64_t folded_epoch() const { return folded_epoch_; }
  int content_dim() const { return content_dim_; }
  int64_t num_half_edges() const { return static_cast<int64_t>(nbr_id_.size()); }
  int64_t num_rows_of_type(NodeType t) const {
    return type_counts_[static_cast<int>(t)];
  }

  // Row accessors take the segment-local row index in [0, num_rows()).
  NodeType row_type(int64_t r) const { return types_[r]; }
  const float* row_content(int64_t r) const {
    return contents_.data() + r * content_dim_;
  }
  std::span<const int64_t> row_slots(int64_t r) const {
    return {slot_ids_.data() + slot_offsets_[r],
            static_cast<size_t>(slot_offsets_[r + 1] - slot_offsets_[r])};
  }
  int64_t row_degree(int64_t r) const { return offsets_[r + 1] - offsets_[r]; }
  std::span<const NodeId> row_neighbor_ids(int64_t r) const {
    return {nbr_id_.data() + offsets_[r], static_cast<size_t>(row_degree(r))};
  }
  std::span<const float> row_neighbor_weights(int64_t r) const {
    return {nbr_weight_.data() + offsets_[r],
            static_cast<size_t>(row_degree(r))};
  }
  std::span<const RelationKind> row_neighbor_kinds(int64_t r) const {
    return {nbr_kind_.data() + offsets_[r],
            static_cast<size_t>(row_degree(r))};
  }
  /// [begin, end) for type `t`, relative to the *row's* neighbor block
  /// (i.e. indexes into row_neighbor_ids(r)).
  std::pair<int64_t, int64_t> row_typed_range(int64_t r, NodeType t) const {
    const int64_t base = r * (kNumNodeTypes + 1);
    return {type_offsets_[base + static_cast<int>(t)] - offsets_[r],
            type_offsets_[base + static_cast<int>(t) + 1] - offsets_[r]};
  }
  const AliasTable& row_alias(int64_t r) const { return alias_[r]; }

  size_t MemoryBytes() const;

 private:
  friend class CsrSegmentBuilder;
  friend Status SaveCsrSegment(const CsrSegment& seg, const std::string& path);
  friend StatusOr<std::shared_ptr<const CsrSegment>> LoadCsrSegment(
      const std::string& path);

  NodeId first_node_ = 0;
  uint64_t generation_ = 0;
  uint64_t folded_epoch_ = 0;
  int content_dim_ = 0;
  std::vector<NodeType> types_;
  std::array<int64_t, kNumNodeTypes> type_counts_ = {0, 0, 0};
  std::vector<float> contents_;        // num_rows * content_dim
  std::vector<int64_t> slot_ids_;
  std::vector<int64_t> slot_offsets_;  // num_rows + 1
  std::vector<int64_t> offsets_;       // num_rows + 1, segment-local
  std::vector<NodeId> nbr_id_;         // global neighbor ids
  std::vector<float> nbr_weight_;
  std::vector<RelationKind> nbr_kind_;
  std::vector<int64_t> type_offsets_;  // per row: kNumNodeTypes+1 local offsets
  std::vector<AliasTable> alias_;
};

/// Row-at-a-time builder for one CsrSegment. Rows must be added in id
/// order; each row's neighbor block is sorted by (neighbor type, kind, id)
/// — the exact order HeteroGraphBuilder::Build produces — using the
/// caller's global type resolver (neighbors may live in other segments or
/// in the streaming overlay).
class CsrSegmentBuilder {
 public:
  using TypeResolver = std::function<NodeType(NodeId)>;

  /// `folded_epoch` stamps the segment with the epoch its rows fold
  /// through (0 for the offline partition) — see
  /// CsrSegment::folded_epoch().
  CsrSegmentBuilder(NodeId first_node, int64_t expected_rows, int content_dim,
                    uint64_t generation, TypeResolver type_of,
                    uint64_t folded_epoch = 0);

  /// Appends the next row. `neighbors` need not be sorted; duplicates by
  /// (neighbor, kind) must already be coalesced by the caller.
  void AddRow(NodeType type, std::span<const float> content,
              std::span<const int64_t> slots,
              std::vector<NeighborEntry> neighbors);

  /// Fast path for a row copied verbatim from an existing segment: the
  /// neighbor block is already sorted/typed, and the alias table is reused
  /// instead of rebuilt.
  void CopyRow(const CsrSegment& src, int64_t src_row);

  /// Same verbatim copy from an offline HeteroGraph row (its blocks are
  /// already in the shared (neighbor type, kind, id) order): block arrays
  /// and typed offsets are memcpy-shaped, only the alias table is rebuilt
  /// (the source's is inaccessible) — no sorting, no type resolution.
  void CopyRow(const HeteroGraph& src, NodeId src_row);

  std::shared_ptr<const CsrSegment> Build();

 private:
  CsrSegment seg_;
  TypeResolver type_of_;
};

/// Immutable node-partitioned CSR: contiguous segments of `segment_span`
/// rows (a power of two; the last segment may be partial). Successor() is
/// how incremental compaction works: it produces a new SegmentedCsr that
/// shares every untouched segment and swaps/appends the rebuilt ones.
class SegmentedCsr {
 public:
  /// Partitions an offline HeteroGraph into segments of `span` rows (all
  /// segments start at generation `generation`). Row payloads and neighbor
  /// blocks are copied verbatim, so reads are bit-identical to the source.
  SegmentedCsr(const HeteroGraph& base, int64_t span,
               uint64_t generation = 1);

  /// Successor sharing this graph's segments except those in `replaced`
  /// (indexed by segment number; entries beyond the current segment count
  /// append new coverage, which must stay contiguous).
  std::shared_ptr<const SegmentedCsr> Successor(
      const std::vector<std::pair<int64_t,
                                  std::shared_ptr<const CsrSegment>>>&
          replaced) const;

  /// Reassembles a SegmentedCsr from already-built segments (checkpoint
  /// recovery). Validates span (power of two), contiguity (segment i
  /// starts at i * span, all but the last span full rows), and a
  /// consistent content_dim across segments.
  static StatusOr<std::shared_ptr<const SegmentedCsr>> FromSegments(
      int64_t span,
      std::vector<std::shared_ptr<const CsrSegment>> segments);

  int64_t segment_span() const { return span_; }
  int span_shift() const { return span_shift_; }
  int64_t num_segments() const { return static_cast<int64_t>(segments_.size()); }
  int64_t segment_of(NodeId id) const { return id >> span_shift_; }
  const CsrSegment& segment(int64_t s) const { return *segments_[s]; }
  std::shared_ptr<const CsrSegment> segment_ptr(int64_t s) const {
    return segments_[s];
  }
  /// Generation of the segment backing `id` (0 for ids beyond coverage —
  /// i.e. overlay-born nodes not yet folded).
  uint64_t generation_of(NodeId id) const {
    const int64_t s = segment_of(id);
    return (id >= 0 && s < num_segments()) ? segments_[s]->generation() : 0;
  }
  uint64_t segment_generation(int64_t s) const {
    return segments_[s]->generation();
  }

  // ---- HeteroGraph-compatible read API (global node ids) -------------------
  int64_t num_nodes() const { return num_nodes_; }
  int64_t num_edges() const { return num_half_edges_; }
  int64_t num_nodes_of_type(NodeType t) const {
    return type_counts_[static_cast<int>(t)];
  }
  int content_dim() const { return content_dim_; }

  NodeType node_type(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_type(r);
  }
  const float* content(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_content(r);
  }
  std::span<const int64_t> slots(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_slots(r);
  }
  int64_t degree(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_degree(r);
  }
  std::span<const NodeId> neighbor_ids(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_neighbor_ids(r);
  }
  std::span<const float> neighbor_weights(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_neighbor_weights(r);
  }
  std::span<const RelationKind> neighbor_kinds(NodeId id) const {
    const auto [seg, r] = Locate(id);
    return seg->row_neighbor_kinds(r);
  }
  std::span<const NodeId> NeighborsOfType(NodeId id, NodeType t) const {
    const auto [seg, r] = Locate(id);
    const auto [b, e] = seg->row_typed_range(r, t);
    return seg->row_neighbor_ids(r).subspan(static_cast<size_t>(b),
                                            static_cast<size_t>(e - b));
  }
  NodeId SampleNeighbor(NodeId id, Rng* rng) const {
    const auto [seg, r] = Locate(id);
    if (seg->row_degree(r) == 0) return -1;
    const size_t k = seg->row_alias(r).Sample(rng);
    return seg->row_neighbor_ids(r)[k];
  }

  /// Batched weighted draws across segments: k draws per node, row-major
  /// into `out` (-1 rows for isolated nodes). Bit-identical to k
  /// SampleNeighbor calls per node in order; resolves Locate() once per
  /// node, prefetches the next node's row and alias table one node ahead,
  /// and draws through AliasTable::SampleBatch.
  void SampleManyNeighbors(std::span<const NodeId> nodes, int k, Rng* rng,
                           std::vector<NodeId>* out) const;

  size_t MemoryBytes() const;
  std::string DebugString() const;

 private:
  SegmentedCsr() = default;

  std::pair<const CsrSegment*, int64_t> Locate(NodeId id) const {
    ZCHECK(id >= 0 && id < num_nodes_);
    const CsrSegment* seg = segments_[id >> span_shift_].get();
    return {seg, id - seg->first_node()};
  }

  void RecomputeTotals();

  int64_t span_ = 0;
  int span_shift_ = 0;
  int content_dim_ = 0;
  int64_t num_nodes_ = 0;
  int64_t num_half_edges_ = 0;
  std::array<int64_t, kNumNodeTypes> type_counts_ = {0, 0, 0};
  std::vector<std::shared_ptr<const CsrSegment>> segments_;
};

/// GraphView adapter over a SegmentedCsr, mirroring CsrGraphView: zero-copy
/// spans into the owning segments. `base` must outlive the view (snapshots
/// pin the SegmentedCsr, satisfying this on the streaming read path).
class SegmentedCsrView final : public GraphView {
 public:
  explicit SegmentedCsrView(const SegmentedCsr* base) : g_(base) {}
  explicit SegmentedCsrView(const SegmentedCsr& base) : g_(&base) {}

  int64_t num_nodes() const override { return g_->num_nodes(); }
  int content_dim() const override { return g_->content_dim(); }
  NodeType node_type(NodeId id) const override { return g_->node_type(id); }
  const float* content(NodeId id) const override { return g_->content(id); }
  std::span<const int64_t> slots(NodeId id) const override {
    return g_->slots(id);
  }
  int64_t degree(NodeId id) const override { return g_->degree(id); }
  NeighborBlock Neighbors(NodeId id, NeighborScratch*) const override {
    return {g_->neighbor_ids(id), g_->neighbor_weights(id),
            g_->neighbor_kinds(id)};
  }
  NeighborBlock NeighborsOfType(NodeId id, NodeType t,
                                NeighborScratch*) const override {
    return TypedCsrBlock(*g_, id, t);
  }
  NodeId SampleNeighbor(NodeId id, Rng* rng) const override {
    return g_->SampleNeighbor(id, rng);
  }
  void SampleManyNeighbors(std::span<const NodeId> nodes, int k, Rng* rng,
                           std::vector<NodeId>* out) const override {
    g_->SampleManyNeighbors(nodes, k, rng, out);
  }

  const SegmentedCsr& csr() const { return *g_; }

 private:
  const SegmentedCsr* g_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_SEGMENTED_CSR_H_
