#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/byte_buffer.h"
#include "common/crc32.h"

namespace zoomer {
namespace graph {

namespace {

constexpr uint64_t kMagic = 0x5A4F4F4D47524148ull;  // "ZOOMGRAH"
constexpr uint32_t kVersion = 1;

constexpr uint64_t kSegMagic = 0x5A4F4F4D5345474Dull;  // "ZOOMSEGM"
constexpr uint32_t kSegVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return WriteBytes(f, &v, sizeof(T));
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  return WriteScalar<uint64_t>(f, v.size()) &&
         (v.empty() || WriteBytes(f, v.data(), v.size() * sizeof(T)));
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(T));
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v, uint64_t max_elems) {
  uint64_t n = 0;
  if (!ReadScalar(f, &n)) return false;
  if (n > max_elems) return false;  // corruption guard
  v->resize(n);
  return v->empty() || ReadBytes(f, v->data(), n * sizeof(T));
}

}  // namespace

Status SaveGraph(const HeteroGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Unavailable("cannot open " + path + " for writing");

  const int64_t n = g.num_nodes();
  bool ok = WriteScalar(f.get(), kMagic) && WriteScalar(f.get(), kVersion) &&
            WriteScalar<int64_t>(f.get(), n) &&
            WriteScalar<int32_t>(f.get(), g.content_dim());
  // Node sections.
  std::vector<uint8_t> types(n);
  std::vector<float> contents(static_cast<size_t>(n) * g.content_dim());
  std::vector<int64_t> slot_ids;
  std::vector<int64_t> slot_offsets = {0};
  for (NodeId v = 0; v < n && ok; ++v) {
    types[v] = static_cast<uint8_t>(g.node_type(v));
    const float* c = g.content(v);
    std::copy(c, c + g.content_dim(), contents.begin() + v * g.content_dim());
    auto s = g.slots(v);
    slot_ids.insert(slot_ids.end(), s.begin(), s.end());
    slot_offsets.push_back(static_cast<int64_t>(slot_ids.size()));
  }
  ok = ok && WriteVector(f.get(), types) && WriteVector(f.get(), contents) &&
       WriteVector(f.get(), slot_ids) && WriteVector(f.get(), slot_offsets);

  // Edge list: one record per undirected edge (emit each half-edge pair
  // once, from the lower endpoint).
  std::vector<int64_t> ea, eb;
  std::vector<float> ew;
  std::vector<uint8_t> ek;
  for (NodeId v = 0; v < n; ++v) {
    auto ids = g.neighbor_ids(v);
    auto weights = g.neighbor_weights(v);
    auto kinds = g.neighbor_kinds(v);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] < v) continue;  // emit once per undirected edge
      ea.push_back(v);
      eb.push_back(ids[i]);
      ew.push_back(weights[i]);
      ek.push_back(static_cast<uint8_t>(kinds[i]));
    }
  }
  ok = ok && WriteVector(f.get(), ea) && WriteVector(f.get(), eb) &&
       WriteVector(f.get(), ew) && WriteVector(f.get(), ek);
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<HeteroGraph> LoadGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);

  uint64_t magic = 0;
  uint32_t version = 0;
  int64_t n = 0;
  int32_t content_dim = 0;
  if (!ReadScalar(f.get(), &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!ReadScalar(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  if (!ReadScalar(f.get(), &n) || !ReadScalar(f.get(), &content_dim) ||
      n <= 0 || content_dim <= 0) {
    return Status::InvalidArgument("corrupt header in " + path);
  }
  constexpr uint64_t kMaxElems = 1ull << 34;
  std::vector<uint8_t> types;
  std::vector<float> contents;
  std::vector<int64_t> slot_ids, slot_offsets;
  if (!ReadVector(f.get(), &types, kMaxElems) ||
      !ReadVector(f.get(), &contents, kMaxElems) ||
      !ReadVector(f.get(), &slot_ids, kMaxElems) ||
      !ReadVector(f.get(), &slot_offsets, kMaxElems)) {
    return Status::InvalidArgument("corrupt node sections in " + path);
  }
  if (static_cast<int64_t>(types.size()) != n ||
      static_cast<int64_t>(contents.size()) != n * content_dim ||
      static_cast<int64_t>(slot_offsets.size()) != n + 1) {
    return Status::InvalidArgument("node section size mismatch");
  }
  std::vector<int64_t> ea, eb;
  std::vector<float> ew;
  std::vector<uint8_t> ek;
  if (!ReadVector(f.get(), &ea, kMaxElems) ||
      !ReadVector(f.get(), &eb, kMaxElems) ||
      !ReadVector(f.get(), &ew, kMaxElems) ||
      !ReadVector(f.get(), &ek, kMaxElems)) {
    return Status::InvalidArgument("corrupt edge sections in " + path);
  }
  if (ea.size() != eb.size() || ea.size() != ew.size() ||
      ea.size() != ek.size()) {
    return Status::InvalidArgument("edge section size mismatch");
  }

  HeteroGraphBuilder builder(content_dim);
  for (int64_t v = 0; v < n; ++v) {
    if (types[v] >= kNumNodeTypes) {
      return Status::InvalidArgument("invalid node type");
    }
    std::vector<float> c(contents.begin() + v * content_dim,
                         contents.begin() + (v + 1) * content_dim);
    if (slot_offsets[v] < 0 || slot_offsets[v + 1] < slot_offsets[v] ||
        slot_offsets[v + 1] > static_cast<int64_t>(slot_ids.size())) {
      return Status::InvalidArgument("invalid slot offsets");
    }
    std::vector<int64_t> s(slot_ids.begin() + slot_offsets[v],
                           slot_ids.begin() + slot_offsets[v + 1]);
    builder.AddNode(static_cast<NodeType>(types[v]), std::move(c),
                    std::move(s));
  }
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ek[i] >= kNumRelationKinds) {
      return Status::InvalidArgument("invalid relation kind");
    }
    Status st = builder.AddEdge(ea[i], eb[i],
                                static_cast<RelationKind>(ek[i]), ew[i]);
    if (!st.ok()) return st;
  }
  return builder.Build();
}

Status SaveCsrSegment(const CsrSegment& seg, const std::string& path) {
  // Payload first, in memory: the header carries its CRC, so recovery can
  // distinguish a torn write from silent corruption before trusting any
  // array. Alias tables are omitted — AliasTable::Build is deterministic
  // over the stored (ordered) weights, so the rebuilt tables, and with
  // them every weighted-draw sequence, match the saved segment exactly.
  ByteWriter w;
  w.Scalar<int64_t>(seg.first_node_);
  w.Scalar<uint64_t>(seg.generation_);
  w.Scalar<uint64_t>(seg.folded_epoch_);
  w.Scalar<int32_t>(seg.content_dim_);
  w.Vector(seg.types_);
  w.Vector(seg.contents_);
  w.Vector(seg.slot_ids_);
  w.Vector(seg.slot_offsets_);
  w.Vector(seg.offsets_);
  w.Vector(seg.nbr_id_);
  w.Vector(seg.nbr_weight_);
  w.Vector(seg.nbr_kind_);
  w.Vector(seg.type_offsets_);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Unavailable("cannot open " + path + " for writing");
  const uint32_t crc = Crc32(w.data().data(), w.size());
  bool ok = WriteScalar(f.get(), kSegMagic) &&
            WriteScalar(f.get(), kSegVersion) && WriteScalar(f.get(), crc) &&
            WriteScalar<uint64_t>(f.get(), w.size()) &&
            (w.size() == 0 || WriteBytes(f.get(), w.data().data(), w.size()));
  ok = ok && std::fflush(f.get()) == 0;
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<std::shared_ptr<const CsrSegment>> LoadCsrSegment(
    const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);
  uint64_t magic = 0;
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  if (!ReadScalar(f.get(), &magic) || magic != kSegMagic) {
    return Status::InvalidArgument("bad segment magic in " + path);
  }
  if (!ReadScalar(f.get(), &version) || version != kSegVersion) {
    return Status::InvalidArgument("unsupported segment file version in " +
                                   path);
  }
  constexpr uint64_t kMaxPayload = 1ull << 38;
  if (!ReadScalar(f.get(), &crc) || !ReadScalar(f.get(), &payload_size) ||
      payload_size > kMaxPayload) {
    return Status::InvalidArgument("corrupt segment header in " + path);
  }
  std::vector<uint8_t> payload(payload_size);
  if (payload_size > 0 &&
      !ReadBytes(f.get(), payload.data(), payload.size())) {
    return Status::InvalidArgument("truncated segment payload in " + path);
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::InvalidArgument("segment payload CRC mismatch in " + path);
  }

  constexpr uint64_t kMaxElems = 1ull << 34;
  auto seg = std::make_shared<CsrSegment>();
  ByteReader r({payload.data(), payload.size()});
  int32_t content_dim = 0;
  bool ok = r.Scalar(&seg->first_node_) && r.Scalar(&seg->generation_) &&
            r.Scalar(&seg->folded_epoch_) && r.Scalar(&content_dim) &&
            r.Vector(&seg->types_, kMaxElems) &&
            r.Vector(&seg->contents_, kMaxElems) &&
            r.Vector(&seg->slot_ids_, kMaxElems) &&
            r.Vector(&seg->slot_offsets_, kMaxElems) &&
            r.Vector(&seg->offsets_, kMaxElems) &&
            r.Vector(&seg->nbr_id_, kMaxElems) &&
            r.Vector(&seg->nbr_weight_, kMaxElems) &&
            r.Vector(&seg->nbr_kind_, kMaxElems) &&
            r.Vector(&seg->type_offsets_, kMaxElems);
  if (!ok || !r.exhausted()) {
    return Status::InvalidArgument("corrupt segment payload in " + path);
  }
  seg->content_dim_ = content_dim;

  // Structural validation: the CRC catches bit rot, this catches a payload
  // that checksums fine but violates the segment invariants (e.g. written
  // by a buggy producer). Nothing below may index out of the arrays.
  const int64_t rows = static_cast<int64_t>(seg->types_.size());
  const int64_t half_edges = static_cast<int64_t>(seg->nbr_id_.size());
  if (rows <= 0 || content_dim <= 0 || seg->first_node_ < 0) {
    return Status::InvalidArgument("invalid segment shape in " + path);
  }
  if (static_cast<int64_t>(seg->contents_.size()) != rows * content_dim ||
      static_cast<int64_t>(seg->slot_offsets_.size()) != rows + 1 ||
      static_cast<int64_t>(seg->offsets_.size()) != rows + 1 ||
      seg->nbr_weight_.size() != seg->nbr_id_.size() ||
      seg->nbr_kind_.size() != seg->nbr_id_.size() ||
      static_cast<int64_t>(seg->type_offsets_.size()) !=
          rows * (kNumNodeTypes + 1)) {
    return Status::InvalidArgument("segment section size mismatch in " + path);
  }
  if (seg->slot_offsets_[0] != 0 || seg->offsets_[0] != 0 ||
      seg->slot_offsets_[rows] !=
          static_cast<int64_t>(seg->slot_ids_.size()) ||
      seg->offsets_[rows] != half_edges) {
    return Status::InvalidArgument("segment offsets do not cover arrays in " +
                                   path);
  }
  for (int64_t r2 = 0; r2 < rows; ++r2) {
    if (seg->slot_offsets_[r2 + 1] < seg->slot_offsets_[r2] ||
        seg->offsets_[r2 + 1] < seg->offsets_[r2]) {
      return Status::InvalidArgument("non-monotone segment offsets in " +
                                     path);
    }
    const int64_t tbase = r2 * (kNumNodeTypes + 1);
    if (seg->type_offsets_[tbase] != seg->offsets_[r2] ||
        seg->type_offsets_[tbase + kNumNodeTypes] != seg->offsets_[r2 + 1]) {
      return Status::InvalidArgument("typed sub-ranges do not cover the row "
                                     "block in " +
                                     path);
    }
    for (int t = 0; t < kNumNodeTypes; ++t) {
      if (seg->type_offsets_[tbase + t + 1] < seg->type_offsets_[tbase + t]) {
        return Status::InvalidArgument("non-monotone typed sub-ranges in " +
                                       path);
      }
    }
    if (static_cast<uint8_t>(seg->types_[r2]) >= kNumNodeTypes) {
      return Status::InvalidArgument("invalid node type in " + path);
    }
  }
  for (const RelationKind k : seg->nbr_kind_) {
    if (static_cast<uint8_t>(k) >= kNumRelationKinds) {
      return Status::InvalidArgument("invalid relation kind in " + path);
    }
  }
  for (const NodeId id : seg->nbr_id_) {
    if (id < 0) {
      return Status::InvalidArgument("negative neighbor id in " + path);
    }
  }

  // Derived state: type counts and the per-row alias tables (deterministic
  // Vose construction over the stored weight order).
  for (int64_t r2 = 0; r2 < rows; ++r2) {
    ++seg->type_counts_[static_cast<int>(seg->types_[r2])];
  }
  seg->alias_.resize(static_cast<size_t>(rows));
  std::vector<double> wbuf;
  for (int64_t r2 = 0; r2 < rows; ++r2) {
    const int64_t deg = seg->offsets_[r2 + 1] - seg->offsets_[r2];
    if (deg == 0) continue;
    wbuf.assign(seg->nbr_weight_.begin() + seg->offsets_[r2],
                seg->nbr_weight_.begin() + seg->offsets_[r2 + 1]);
    for (double wv : wbuf) {
      if (!(wv >= 0.0)) {
        return Status::InvalidArgument("invalid neighbor weight in " + path);
      }
    }
    seg->alias_[static_cast<size_t>(r2)].Build(wbuf);
  }
  return std::shared_ptr<const CsrSegment>(std::move(seg));
}

}  // namespace graph
}  // namespace zoomer
