#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

namespace zoomer {
namespace graph {

namespace {

constexpr uint64_t kMagic = 0x5A4F4F4D47524148ull;  // "ZOOMGRAH"
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

template <typename T>
bool WriteScalar(std::FILE* f, T v) {
  return WriteBytes(f, &v, sizeof(T));
}

template <typename T>
bool WriteVector(std::FILE* f, const std::vector<T>& v) {
  return WriteScalar<uint64_t>(f, v.size()) &&
         (v.empty() || WriteBytes(f, v.data(), v.size() * sizeof(T)));
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

template <typename T>
bool ReadScalar(std::FILE* f, T* v) {
  return ReadBytes(f, v, sizeof(T));
}

template <typename T>
bool ReadVector(std::FILE* f, std::vector<T>* v, uint64_t max_elems) {
  uint64_t n = 0;
  if (!ReadScalar(f, &n)) return false;
  if (n > max_elems) return false;  // corruption guard
  v->resize(n);
  return v->empty() || ReadBytes(f, v->data(), n * sizeof(T));
}

}  // namespace

Status SaveGraph(const HeteroGraph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::Unavailable("cannot open " + path + " for writing");

  const int64_t n = g.num_nodes();
  bool ok = WriteScalar(f.get(), kMagic) && WriteScalar(f.get(), kVersion) &&
            WriteScalar<int64_t>(f.get(), n) &&
            WriteScalar<int32_t>(f.get(), g.content_dim());
  // Node sections.
  std::vector<uint8_t> types(n);
  std::vector<float> contents(static_cast<size_t>(n) * g.content_dim());
  std::vector<int64_t> slot_ids;
  std::vector<int64_t> slot_offsets = {0};
  for (NodeId v = 0; v < n && ok; ++v) {
    types[v] = static_cast<uint8_t>(g.node_type(v));
    const float* c = g.content(v);
    std::copy(c, c + g.content_dim(), contents.begin() + v * g.content_dim());
    auto s = g.slots(v);
    slot_ids.insert(slot_ids.end(), s.begin(), s.end());
    slot_offsets.push_back(static_cast<int64_t>(slot_ids.size()));
  }
  ok = ok && WriteVector(f.get(), types) && WriteVector(f.get(), contents) &&
       WriteVector(f.get(), slot_ids) && WriteVector(f.get(), slot_offsets);

  // Edge list: one record per undirected edge (emit each half-edge pair
  // once, from the lower endpoint).
  std::vector<int64_t> ea, eb;
  std::vector<float> ew;
  std::vector<uint8_t> ek;
  for (NodeId v = 0; v < n; ++v) {
    auto ids = g.neighbor_ids(v);
    auto weights = g.neighbor_weights(v);
    auto kinds = g.neighbor_kinds(v);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] < v) continue;  // emit once per undirected edge
      ea.push_back(v);
      eb.push_back(ids[i]);
      ew.push_back(weights[i]);
      ek.push_back(static_cast<uint8_t>(kinds[i]));
    }
  }
  ok = ok && WriteVector(f.get(), ea) && WriteVector(f.get(), eb) &&
       WriteVector(f.get(), ew) && WriteVector(f.get(), ek);
  if (!ok) return Status::Internal("short write to " + path);
  return Status::OK();
}

StatusOr<HeteroGraph> LoadGraph(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::NotFound("cannot open " + path);

  uint64_t magic = 0;
  uint32_t version = 0;
  int64_t n = 0;
  int32_t content_dim = 0;
  if (!ReadScalar(f.get(), &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (!ReadScalar(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported graph file version");
  }
  if (!ReadScalar(f.get(), &n) || !ReadScalar(f.get(), &content_dim) ||
      n <= 0 || content_dim <= 0) {
    return Status::InvalidArgument("corrupt header in " + path);
  }
  constexpr uint64_t kMaxElems = 1ull << 34;
  std::vector<uint8_t> types;
  std::vector<float> contents;
  std::vector<int64_t> slot_ids, slot_offsets;
  if (!ReadVector(f.get(), &types, kMaxElems) ||
      !ReadVector(f.get(), &contents, kMaxElems) ||
      !ReadVector(f.get(), &slot_ids, kMaxElems) ||
      !ReadVector(f.get(), &slot_offsets, kMaxElems)) {
    return Status::InvalidArgument("corrupt node sections in " + path);
  }
  if (static_cast<int64_t>(types.size()) != n ||
      static_cast<int64_t>(contents.size()) != n * content_dim ||
      static_cast<int64_t>(slot_offsets.size()) != n + 1) {
    return Status::InvalidArgument("node section size mismatch");
  }
  std::vector<int64_t> ea, eb;
  std::vector<float> ew;
  std::vector<uint8_t> ek;
  if (!ReadVector(f.get(), &ea, kMaxElems) ||
      !ReadVector(f.get(), &eb, kMaxElems) ||
      !ReadVector(f.get(), &ew, kMaxElems) ||
      !ReadVector(f.get(), &ek, kMaxElems)) {
    return Status::InvalidArgument("corrupt edge sections in " + path);
  }
  if (ea.size() != eb.size() || ea.size() != ew.size() ||
      ea.size() != ek.size()) {
    return Status::InvalidArgument("edge section size mismatch");
  }

  HeteroGraphBuilder builder(content_dim);
  for (int64_t v = 0; v < n; ++v) {
    if (types[v] >= kNumNodeTypes) {
      return Status::InvalidArgument("invalid node type");
    }
    std::vector<float> c(contents.begin() + v * content_dim,
                         contents.begin() + (v + 1) * content_dim);
    if (slot_offsets[v] < 0 || slot_offsets[v + 1] < slot_offsets[v] ||
        slot_offsets[v + 1] > static_cast<int64_t>(slot_ids.size())) {
      return Status::InvalidArgument("invalid slot offsets");
    }
    std::vector<int64_t> s(slot_ids.begin() + slot_offsets[v],
                           slot_ids.begin() + slot_offsets[v + 1]);
    builder.AddNode(static_cast<NodeType>(types[v]), std::move(c),
                    std::move(s));
  }
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ek[i] >= kNumRelationKinds) {
      return Status::InvalidArgument("invalid relation kind");
    }
    Status st = builder.AddEdge(ea[i], eb[i],
                                static_cast<RelationKind>(ek[i]), ew[i]);
    if (!st.ok()) return st;
  }
  return builder.Build();
}

}  // namespace graph
}  // namespace zoomer
