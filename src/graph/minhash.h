// MinHash signatures and LSH candidate generation for similarity-based edge
// construction. The paper (Sec. II) builds similarity edges between queries
// and items from minHash-estimated Jaccard similarities over title terms;
// these edges help cold-start nodes that have sparse interaction history.
#ifndef ZOOMER_GRAPH_MINHASH_H_
#define ZOOMER_GRAPH_MINHASH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace zoomer {
namespace graph {

/// Fixed family of 64-bit hash permutations; a signature is the per-
/// permutation minimum over a token set.
class MinHasher {
 public:
  /// num_permutations: signature length; more permutations lower the
  /// Jaccard-estimation variance (stddev ~ 1/sqrt(k)).
  explicit MinHasher(int num_permutations, uint64_t seed = 0xC0FFEEULL);

  /// Computes the signature of a token set. Empty sets yield all-max
  /// signatures (similarity 0 against everything non-empty).
  std::vector<uint64_t> Signature(const std::vector<uint64_t>& tokens) const;

  /// Unbiased estimate of Jaccard similarity from two signatures.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  /// Exact Jaccard over raw token sets (test oracle / small inputs).
  static double ExactJaccard(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b);

  int num_permutations() const { return static_cast<int>(mul_.size()); }

 private:
  std::vector<uint64_t> mul_;
  std::vector<uint64_t> add_;
};

/// Banded LSH over MinHash signatures: signatures are split into `bands`
/// groups of `rows` values; sets sharing any band bucket become candidate
/// pairs. Used to avoid the O(n^2) scan when wiring similarity edges.
class MinHashLsh {
 public:
  MinHashLsh(int bands, int rows) : bands_(bands), rows_(rows) {}

  /// Inserts a signature under the caller-supplied id.
  void Insert(int64_t id, const std::vector<uint64_t>& signature);

  /// All unordered candidate pairs (each reported once, a < b).
  std::vector<std::pair<int64_t, int64_t>> CandidatePairs() const;

  int bands() const { return bands_; }
  int rows() const { return rows_; }

 private:
  int bands_;
  int rows_;
  // band index -> bucket hash -> member ids
  std::vector<std::unordered_map<uint64_t, std::vector<int64_t>>> buckets_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_MINHASH_H_
