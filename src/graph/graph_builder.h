// Log-to-graph construction following paper Sec. II:
//  - interaction (click) edges: user-query, and each clicked item-query;
//  - session edges: adjacently clicked items c_i, c_{i+1};
//  - similarity edges: minHash Jaccard between query/item token sets,
//    weighted by the estimated similarity, wired via LSH candidates.
#ifndef ZOOMER_GRAPH_GRAPH_BUILDER_H_
#define ZOOMER_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/hetero_graph.h"
#include "graph/minhash.h"
#include "graph/session_log.h"

namespace zoomer {
namespace graph {

/// Full description of a node before graph construction.
struct NodeSpec {
  NodeType type;
  std::vector<float> content;   // dense content vector (content_dim)
  std::vector<int64_t> slots;   // categorical feature ids (paper Table I)
  std::vector<uint64_t> tokens; // title-term token set for minHash
};

struct GraphBuildOptions {
  /// Add minHash-based similarity edges between queries and items.
  bool add_similarity_edges = true;
  /// Estimated-Jaccard threshold below which a candidate pair is dropped.
  double similarity_threshold = 0.25;
  /// MinHash signature length = lsh_bands * lsh_rows.
  int lsh_bands = 8;
  int lsh_rows = 4;
  /// Cap on similarity edges per node to bound degree blowup.
  int max_similarity_degree = 10;
  /// Only sessions with timestamp < time_window_seconds are used when >0
  /// (reproduces the paper's 1-hour vs 1-day graph construction).
  int64_t time_window_seconds = 0;
  /// Repeated interaction edges accumulate weight instead of multiplying
  /// parallel edges.
  bool coalesce_duplicate_edges = true;
};

/// Builds the heterogeneous retrieval graph from node specs and session logs.
/// Node ids in the log refer to indices into `nodes`.
StatusOr<HeteroGraph> BuildGraphFromLogs(const std::vector<NodeSpec>& nodes,
                                         const SessionLog& log,
                                         const GraphBuildOptions& options);

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_GRAPH_BUILDER_H_
