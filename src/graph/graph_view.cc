#include "graph/graph_view.h"

#include <algorithm>

namespace zoomer {
namespace graph {

NeighborBlock GraphView::NeighborsOfType(NodeId id, NodeType t,
                                         NeighborScratch* scratch) const {
  const NeighborBlock all = Neighbors(id, scratch);
  // The merged block may already live in the scratch vectors, so filter
  // into fresh locals before overwriting them.
  std::vector<NodeId> ids;
  std::vector<float> weights;
  std::vector<RelationKind> kinds;
  for (int64_t i = 0; i < all.size(); ++i) {
    if (node_type(all.ids[i]) != t) continue;
    ids.push_back(all.ids[i]);
    weights.push_back(all.weights[i]);
    kinds.push_back(all.kinds[i]);
  }
  scratch->ids = std::move(ids);
  scratch->weights = std::move(weights);
  scratch->kinds = std::move(kinds);
  return {scratch->ids, scratch->weights, scratch->kinds};
}

void GraphView::SampleManyNeighbors(std::span<const NodeId> nodes, int k,
                                    Rng* rng,
                                    std::vector<NodeId>* out) const {
  const size_t kk = static_cast<size_t>(std::max(k, 0));
  out->assign(nodes.size() * kk, NodeId{-1});
  if (k <= 0) return;
  size_t w = 0;
  for (const NodeId id : nodes) {
    for (size_t j = 0; j < kk; ++j) (*out)[w++] = SampleNeighbor(id, rng);
  }
}

std::vector<NodeId> GraphView::SampleDistinctNeighbors(NodeId id, int k,
                                                       Rng* rng) const {
  std::vector<NodeId> seen;
  if (k <= 0) return seen;
  const int max_attempts = k * 4;
  for (int a = 0; a < max_attempts && static_cast<int>(seen.size()) < k; ++a) {
    const NodeId nb = SampleNeighbor(id, rng);
    if (nb < 0) break;
    if (std::find(seen.begin(), seen.end(), nb) == seen.end()) {
      seen.push_back(nb);
    }
  }
  return seen;
}

}  // namespace graph
}  // namespace zoomer
