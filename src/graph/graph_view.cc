#include "graph/graph_view.h"

#include <algorithm>

namespace zoomer {
namespace graph {

std::vector<NodeId> GraphView::SampleDistinctNeighbors(NodeId id, int k,
                                                       Rng* rng) const {
  std::vector<NodeId> seen;
  if (k <= 0) return seen;
  const int max_attempts = k * 4;
  for (int a = 0; a < max_attempts && static_cast<int>(seen.size()) < k; ++a) {
    const NodeId nb = SampleNeighbor(id, rng);
    if (nb < 0) break;
    if (std::find(seen.begin(), seen.end(), nb) == seen.end()) {
      seen.push_back(nb);
    }
  }
  return seen;
}

}  // namespace graph
}  // namespace zoomer
