#include "graph/minhash.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace graph {

namespace {
// Finalizer from MurmurHash3 for per-permutation mixing.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}
}  // namespace

MinHasher::MinHasher(int num_permutations, uint64_t seed) {
  ZCHECK_GT(num_permutations, 0);
  Rng rng(seed);
  mul_.resize(num_permutations);
  add_.resize(num_permutations);
  for (int i = 0; i < num_permutations; ++i) {
    mul_[i] = rng.NextUint64() | 1ull;  // odd multiplier => bijection mod 2^64
    add_[i] = rng.NextUint64();
  }
}

std::vector<uint64_t> MinHasher::Signature(
    const std::vector<uint64_t>& tokens) const {
  std::vector<uint64_t> sig(mul_.size(),
                            std::numeric_limits<uint64_t>::max());
  for (uint64_t t : tokens) {
    const uint64_t h = Mix64(t);
    for (size_t i = 0; i < mul_.size(); ++i) {
      const uint64_t v = h * mul_[i] + add_[i];
      if (v < sig[i]) sig[i] = v;
    }
  }
  return sig;
}

double MinHasher::EstimateJaccard(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b) {
  ZCHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  size_t match = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(a.size());
}

double MinHasher::ExactJaccard(const std::vector<uint64_t>& a,
                               const std::vector<uint64_t>& b) {
  std::set<uint64_t> sa(a.begin(), a.end());
  std::set<uint64_t> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 0.0;
  size_t inter = 0;
  for (uint64_t t : sa) inter += sb.count(t);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

void MinHashLsh::Insert(int64_t id, const std::vector<uint64_t>& signature) {
  ZCHECK_GE(static_cast<int>(signature.size()), bands_ * rows_)
      << "signature too short for banding";
  if (buckets_.empty()) buckets_.resize(bands_);
  for (int b = 0; b < bands_; ++b) {
    uint64_t h = 0x811C9DC5ull;
    for (int r = 0; r < rows_; ++r) {
      h = (h ^ signature[b * rows_ + r]) * 0x100000001B3ull;
    }
    buckets_[b][h].push_back(id);
  }
}

std::vector<std::pair<int64_t, int64_t>> MinHashLsh::CandidatePairs() const {
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& band : buckets_) {
    for (const auto& [hash, members] : band) {
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          int64_t a = members[i], b = members[j];
          if (a > b) std::swap(a, b);
          if (a != b) pairs.emplace(a, b);
        }
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace graph
}  // namespace zoomer
