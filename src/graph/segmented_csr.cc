#include "graph/segmented_csr.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace zoomer {
namespace graph {

size_t CsrSegment::MemoryBytes() const {
  size_t bytes = 0;
  bytes += types_.size() * sizeof(NodeType);
  bytes += contents_.size() * sizeof(float);
  bytes += slot_ids_.size() * sizeof(int64_t);
  bytes += slot_offsets_.size() * sizeof(int64_t);
  bytes += offsets_.size() * sizeof(int64_t);
  bytes += nbr_id_.size() * sizeof(NodeId);
  bytes += nbr_weight_.size() * sizeof(float);
  bytes += nbr_kind_.size() * sizeof(RelationKind);
  bytes += type_offsets_.size() * sizeof(int64_t);
  for (const auto& a : alias_) bytes += a.MemoryBytes();
  return bytes;
}

CsrSegmentBuilder::CsrSegmentBuilder(NodeId first_node, int64_t expected_rows,
                                     int content_dim, uint64_t generation,
                                     TypeResolver type_of,
                                     uint64_t folded_epoch)
    : type_of_(std::move(type_of)) {
  seg_.first_node_ = first_node;
  seg_.generation_ = generation;
  seg_.folded_epoch_ = folded_epoch;
  seg_.content_dim_ = content_dim;
  seg_.types_.reserve(expected_rows);
  seg_.contents_.reserve(expected_rows * content_dim);
  seg_.slot_offsets_.push_back(0);
  seg_.offsets_.push_back(0);
}

void CsrSegmentBuilder::AddRow(NodeType type, std::span<const float> content,
                               std::span<const int64_t> slots,
                               std::vector<NeighborEntry> neighbors) {
  ZCHECK_EQ(static_cast<int>(content.size()), seg_.content_dim_)
      << "row content dim mismatch";
  seg_.types_.push_back(type);
  ++seg_.type_counts_[static_cast<int>(type)];
  seg_.contents_.insert(seg_.contents_.end(), content.begin(), content.end());
  seg_.slot_ids_.insert(seg_.slot_ids_.end(), slots.begin(), slots.end());
  seg_.slot_offsets_.push_back(static_cast<int64_t>(seg_.slot_ids_.size()));

  // The block order contract shared with HeteroGraphBuilder::Build: sort by
  // (neighbor type, kind, neighbor id). The key is unique per coalesced
  // entry, so the order — and with it typed sub-ranges, alias layout, and
  // every downstream draw sequence — is deterministic regardless of how the
  // row was assembled (offline build, full fold, or a chain of incremental
  // segment folds). That determinism is what the fold-parity test pins.
  std::sort(neighbors.begin(), neighbors.end(),
            [this](const NeighborEntry& x, const NeighborEntry& y) {
              const int tx = static_cast<int>(type_of_(x.neighbor));
              const int ty = static_cast<int>(type_of_(y.neighbor));
              if (tx != ty) return tx < ty;
              const int kx = static_cast<int>(x.kind);
              const int ky = static_cast<int>(y.kind);
              if (kx != ky) return kx < ky;
              return x.neighbor < y.neighbor;
            });

  const int64_t block_begin = static_cast<int64_t>(seg_.nbr_id_.size());
  for (const NeighborEntry& e : neighbors) {
    seg_.nbr_id_.push_back(e.neighbor);
    seg_.nbr_weight_.push_back(e.weight);
    seg_.nbr_kind_.push_back(e.kind);
  }
  seg_.offsets_.push_back(static_cast<int64_t>(seg_.nbr_id_.size()));

  // Typed sub-offsets (segment-local) over the freshly sorted block.
  int64_t pos = block_begin;
  const int64_t block_end = static_cast<int64_t>(seg_.nbr_id_.size());
  for (int t = 0; t < kNumNodeTypes; ++t) {
    seg_.type_offsets_.push_back(pos);
    while (pos < block_end &&
           static_cast<int>(type_of_(seg_.nbr_id_[pos])) == t) {
      ++pos;
    }
  }
  seg_.type_offsets_.push_back(pos);

  seg_.alias_.emplace_back();
  if (!neighbors.empty()) {
    std::vector<double> w;
    w.reserve(neighbors.size());
    for (const NeighborEntry& e : neighbors) w.push_back(e.weight);
    seg_.alias_.back().Build(w);
  }
}

void CsrSegmentBuilder::CopyRow(const CsrSegment& src, int64_t src_row) {
  ZCHECK_EQ(src.content_dim(), seg_.content_dim_);
  seg_.types_.push_back(src.row_type(src_row));
  ++seg_.type_counts_[static_cast<int>(src.row_type(src_row))];
  const float* c = src.row_content(src_row);
  seg_.contents_.insert(seg_.contents_.end(), c, c + seg_.content_dim_);
  const auto slots = src.row_slots(src_row);
  seg_.slot_ids_.insert(seg_.slot_ids_.end(), slots.begin(), slots.end());
  seg_.slot_offsets_.push_back(static_cast<int64_t>(seg_.slot_ids_.size()));

  const int64_t block_begin = static_cast<int64_t>(seg_.nbr_id_.size());
  const auto ids = src.row_neighbor_ids(src_row);
  const auto weights = src.row_neighbor_weights(src_row);
  const auto kinds = src.row_neighbor_kinds(src_row);
  seg_.nbr_id_.insert(seg_.nbr_id_.end(), ids.begin(), ids.end());
  seg_.nbr_weight_.insert(seg_.nbr_weight_.end(), weights.begin(),
                          weights.end());
  seg_.nbr_kind_.insert(seg_.nbr_kind_.end(), kinds.begin(), kinds.end());
  seg_.offsets_.push_back(static_cast<int64_t>(seg_.nbr_id_.size()));

  const int64_t src_block = src.offsets_[src_row];
  for (int t = 0; t <= kNumNodeTypes; ++t) {
    seg_.type_offsets_.push_back(
        block_begin +
        (src.type_offsets_[src_row * (kNumNodeTypes + 1) + t] - src_block));
  }
  seg_.alias_.push_back(src.row_alias(src_row));
}

void CsrSegmentBuilder::CopyRow(const HeteroGraph& src, NodeId src_row) {
  ZCHECK_EQ(src.content_dim(), seg_.content_dim_);
  const NodeType type = src.node_type(src_row);
  seg_.types_.push_back(type);
  ++seg_.type_counts_[static_cast<int>(type)];
  const float* c = src.content(src_row);
  seg_.contents_.insert(seg_.contents_.end(), c, c + seg_.content_dim_);
  const auto slots = src.slots(src_row);
  seg_.slot_ids_.insert(seg_.slot_ids_.end(), slots.begin(), slots.end());
  seg_.slot_offsets_.push_back(static_cast<int64_t>(seg_.slot_ids_.size()));

  const int64_t block_begin = static_cast<int64_t>(seg_.nbr_id_.size());
  const auto ids = src.neighbor_ids(src_row);
  const auto weights = src.neighbor_weights(src_row);
  const auto kinds = src.neighbor_kinds(src_row);
  seg_.nbr_id_.insert(seg_.nbr_id_.end(), ids.begin(), ids.end());
  seg_.nbr_weight_.insert(seg_.nbr_weight_.end(), weights.begin(),
                          weights.end());
  seg_.nbr_kind_.insert(seg_.nbr_kind_.end(), kinds.begin(), kinds.end());
  seg_.offsets_.push_back(static_cast<int64_t>(seg_.nbr_id_.size()));

  // HeteroGraph typed ranges are absolute into its global arrays; rebase
  // onto this row's block (the first type's begin is the block start).
  const int64_t src_block =
      src.TypedRange(src_row, static_cast<NodeType>(0)).first;
  for (int t = 0; t < kNumNodeTypes; ++t) {
    seg_.type_offsets_.push_back(
        block_begin +
        (src.TypedRange(src_row, static_cast<NodeType>(t)).first -
         src_block));
  }
  seg_.type_offsets_.push_back(
      block_begin +
      (src.TypedRange(src_row, static_cast<NodeType>(kNumNodeTypes - 1))
           .second -
       src_block));

  seg_.alias_.emplace_back();
  if (!ids.empty()) {
    std::vector<double> w(weights.begin(), weights.end());
    seg_.alias_.back().Build(w);
  }
}

std::shared_ptr<const CsrSegment> CsrSegmentBuilder::Build() {
  return std::make_shared<const CsrSegment>(std::move(seg_));
}

SegmentedCsr::SegmentedCsr(const HeteroGraph& base, int64_t span,
                           uint64_t generation) {
  ZCHECK_GT(span, 0);
  ZCHECK_EQ(span & (span - 1), 0) << "segment span must be a power of two";
  span_ = span;
  span_shift_ = 0;
  while ((int64_t{1} << span_shift_) < span) ++span_shift_;
  content_dim_ = base.content_dim();

  const int64_t n = base.num_nodes();
  for (NodeId lo = 0; lo < n; lo += span) {
    const int64_t hi = std::min<int64_t>(lo + span, n);
    // Verbatim row copies: the offline blocks are already in the shared
    // sort order, so partitioning is memcpy-shaped (plus per-row alias
    // rebuilds) — never a re-sort of the whole graph.
    CsrSegmentBuilder builder(
        lo, hi - lo, content_dim_, generation,
        [&base](NodeId id) { return base.node_type(id); });
    for (NodeId v = lo; v < hi; ++v) builder.CopyRow(base, v);
    segments_.push_back(builder.Build());
  }
  RecomputeTotals();
}

std::shared_ptr<const SegmentedCsr> SegmentedCsr::Successor(
    const std::vector<std::pair<int64_t, std::shared_ptr<const CsrSegment>>>&
        replaced) const {
  auto next = std::shared_ptr<SegmentedCsr>(new SegmentedCsr());
  next->span_ = span_;
  next->span_shift_ = span_shift_;
  next->content_dim_ = content_dim_;
  next->segments_ = segments_;  // shared_ptr copies: untouched rows shared
  for (const auto& [s, seg] : replaced) {
    ZCHECK(seg != nullptr);
    ZCHECK_EQ(seg->first_node(), s * span_);
    if (s < static_cast<int64_t>(next->segments_.size())) {
      next->segments_[s] = seg;
    } else {
      // Appended coverage must stay contiguous (the fold includes every
      // frontier segment up to its bound, in order).
      ZCHECK_EQ(s, static_cast<int64_t>(next->segments_.size()))
          << "segment append leaves a coverage gap";
      next->segments_.push_back(seg);
    }
  }
  // All but the last segment must span the full range, or segment_of()
  // indexing breaks.
  for (size_t i = 0; i + 1 < next->segments_.size(); ++i) {
    ZCHECK_EQ(next->segments_[i]->num_rows(), span_)
        << "only the frontier segment may be partial";
  }
  next->RecomputeTotals();
  return next;
}

StatusOr<std::shared_ptr<const SegmentedCsr>> SegmentedCsr::FromSegments(
    int64_t span, std::vector<std::shared_ptr<const CsrSegment>> segments) {
  if (span <= 0 || (span & (span - 1)) != 0) {
    return Status::InvalidArgument("segment span must be a power of two");
  }
  if (segments.empty()) {
    return Status::InvalidArgument("cannot assemble a CSR from 0 segments");
  }
  auto csr = std::shared_ptr<SegmentedCsr>(new SegmentedCsr());
  csr->span_ = span;
  csr->span_shift_ = 0;
  while ((int64_t{1} << csr->span_shift_) < span) ++csr->span_shift_;
  csr->content_dim_ = segments.front()->content_dim();
  int64_t expect_first = 0;
  for (size_t s = 0; s < segments.size(); ++s) {
    const CsrSegment& seg = *segments[s];
    if (seg.first_node() != expect_first) {
      return Status::InvalidArgument("segments leave a row-coverage gap");
    }
    if (s + 1 < segments.size() && seg.num_rows() != span) {
      return Status::InvalidArgument(
          "only the frontier segment may be partial");
    }
    if (seg.num_rows() <= 0 || seg.num_rows() > span) {
      return Status::InvalidArgument("segment row count out of range");
    }
    if (seg.content_dim() != csr->content_dim_) {
      return Status::InvalidArgument("segments disagree on content_dim");
    }
    expect_first += seg.num_rows();
  }
  csr->segments_ = std::move(segments);
  csr->RecomputeTotals();
  return std::shared_ptr<const SegmentedCsr>(std::move(csr));
}

void SegmentedCsr::SampleManyNeighbors(std::span<const NodeId> nodes, int k,
                                       Rng* rng,
                                       std::vector<NodeId>* out) const {
  const size_t kk = static_cast<size_t>(std::max(k, 0));
  out->assign(nodes.size() * kk, NodeId{-1});
  if (k <= 0) return;
  std::vector<uint32_t> pos(kk);
  for (size_t r = 0; r < nodes.size(); ++r) {
    if (r + 1 < nodes.size()) {
      // Resolve the next node's segment one iteration early and touch its
      // row start + alias header so those lines load while this node draws.
      const auto [nseg, nrow] = Locate(nodes[r + 1]);
      __builtin_prefetch(nseg->row_neighbor_ids(nrow).data(), /*rw=*/0,
                         /*locality=*/1);
      __builtin_prefetch(&nseg->row_alias(nrow), /*rw=*/0, /*locality=*/1);
    }
    const auto [seg, row] = Locate(nodes[r]);
    if (seg->row_degree(row) == 0) continue;
    seg->row_alias(row).SampleBatch(rng, {pos.data(), kk});
    NodeId* dst = out->data() + r * kk;
    const NodeId* ids = seg->row_neighbor_ids(row).data();
    for (size_t j = 0; j < kk; ++j) dst[j] = ids[pos[j]];
  }
}

void SegmentedCsr::RecomputeTotals() {
  num_nodes_ = 0;
  num_half_edges_ = 0;
  type_counts_ = {0, 0, 0};
  for (const auto& seg : segments_) {
    ZCHECK_EQ(seg->first_node(), num_nodes_) << "segments must be contiguous";
    num_nodes_ += seg->num_rows();
    num_half_edges_ += seg->num_half_edges();
    for (int t = 0; t < kNumNodeTypes; ++t) {
      type_counts_[t] += seg->num_rows_of_type(static_cast<NodeType>(t));
    }
  }
}

size_t SegmentedCsr::MemoryBytes() const {
  size_t bytes = segments_.size() * sizeof(std::shared_ptr<const CsrSegment>);
  for (const auto& seg : segments_) bytes += seg->MemoryBytes();
  return bytes;
}

std::string SegmentedCsr::DebugString() const {
  std::ostringstream os;
  os << "SegmentedCsr{nodes=" << num_nodes() << " (user="
     << num_nodes_of_type(NodeType::kUser)
     << ", query=" << num_nodes_of_type(NodeType::kQuery)
     << ", item=" << num_nodes_of_type(NodeType::kItem)
     << "), half_edges=" << num_edges() << ", content_dim=" << content_dim_
     << ", segments=" << num_segments() << " x " << span_
     << " rows, bytes=" << MemoryBytes() << "}";
  return os.str();
}

}  // namespace graph
}  // namespace zoomer
