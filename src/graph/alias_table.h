// Walker/Vose alias method for O(1) sampling from a discrete distribution.
// The paper (Sec. VI) uses alias tables in the Euler graph engine to achieve
// constant-time weighted neighbor sampling independent of degree; this is the
// same structure backing HeteroGraph::SampleNeighbor.
#ifndef ZOOMER_GRAPH_ALIAS_TABLE_H_
#define ZOOMER_GRAPH_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace graph {

/// Immutable alias table built from a vector of non-negative weights.
/// Sample() draws index i with probability weights[i] / sum(weights) in O(1).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from unnormalized weights. Zero-weight entries are never drawn
  /// unless all weights are zero, in which case sampling is uniform.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights) {
    const size_t n = weights.size();
    prob_.assign(n, 1.0);
    alias_.assign(n, 0);
    if (n == 0) return;
    double total = 0.0;
    for (double w : weights) {
      ZCHECK_GE(w, 0.0) << "alias table weights must be non-negative";
      total += w;
    }
    if (total <= 0.0) {
      // Degenerate: uniform.
      for (size_t i = 0; i < n; ++i) alias_[i] = static_cast<uint32_t>(i);
      return;
    }
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      large.pop_back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = scaled[l] + scaled[s] - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (uint32_t i : large) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
    for (uint32_t i : small) {
      prob_[i] = 1.0;
      alias_[i] = i;
    }
  }

  /// Draws an index according to the built distribution. Table must be
  /// non-empty.
  size_t Sample(Rng* rng) const {
    ZCHECK(!prob_.empty()) << "sampling from empty alias table";
    const size_t i = rng->Uniform(prob_.size());
    return rng->UniformDouble() < prob_[i] ? i : alias_[i];
  }

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Memory footprint in bytes (for engine storage accounting).
  size_t MemoryBytes() const {
    return prob_.size() * sizeof(double) + alias_.size() * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_ALIAS_TABLE_H_
