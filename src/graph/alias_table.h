// Walker/Vose alias method for O(1) sampling from a discrete distribution.
// The paper (Sec. VI) uses alias tables in the Euler graph engine to achieve
// constant-time weighted neighbor sampling independent of degree; this is the
// same structure backing HeteroGraph::SampleNeighbor.
//
// Storage is an interleaved array of 8-byte {float prob; uint32 alias}
// buckets — one cache line covers 8 entries, so a draw touches exactly one
// line instead of the two (prob[] + alias[]) a split layout costs, and the
// batched path can gather buckets as single 64-bit lanes.
#ifndef ZOOMER_GRAPH_ALIAS_TABLE_H_
#define ZOOMER_GRAPH_ALIAS_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "common/random.h"

namespace zoomer {
namespace graph {

/// Immutable alias table built from a vector of non-negative weights.
/// Sample() draws index i with probability weights[i] / sum(weights) in O(1).
class AliasTable {
 public:
  /// One interleaved entry: acceptance threshold and alias target share an
  /// 8-byte slot so a draw is a single load.
  struct Bucket {
    float prob;
    uint32_t alias;
  };
  static_assert(sizeof(Bucket) == 8, "bucket must pack to 8 bytes");

  AliasTable() = default;

  /// Builds from unnormalized weights. Zero-weight entries are never drawn
  /// unless all weights are zero, in which case sampling is uniform.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights) {
    const size_t n = weights.size();
    buckets_.assign(n, Bucket{1.0f, 0});
    if (n == 0) return;
    double total = 0.0;
    for (double w : weights) {
      ZCHECK_GE(w, 0.0) << "alias table weights must be non-negative";
      total += w;
    }
    if (total <= 0.0) {
      // Degenerate: uniform.
      for (size_t i = 0; i < n; ++i) buckets_[i].alias = static_cast<uint32_t>(i);
      return;
    }
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      large.pop_back();
      buckets_[s] = Bucket{static_cast<float>(scaled[s]), l};
      scaled[l] = scaled[l] + scaled[s] - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (uint32_t i : large) buckets_[i] = Bucket{1.0f, i};
    for (uint32_t i : small) buckets_[i] = Bucket{1.0f, i};
  }

  /// Draws an index according to the built distribution. Table must be
  /// non-empty. Consumes exactly one bounded draw and one float per call —
  /// SampleBatch() replays the identical consumption order, so batched and
  /// single draws are bit-identical under a fixed seed.
  size_t Sample(Rng* rng) const {
    ZCHECK(!buckets_.empty()) << "sampling from empty alias table";
    return SampleUnchecked(rng);
  }

  /// Sample() without the non-empty check, for batch loops that validated
  /// the table once up front. Identical Rng consumption and result.
  size_t SampleUnchecked(Rng* rng) const {
    const size_t i = rng->Uniform(buckets_.size());
    const Bucket b = buckets_[i];
    return rng->UniformFloat() < b.prob ? i : b.alias;
  }

  /// Draws out.size() indices. RNG consumption per draw matches Sample()
  /// exactly (bounded index draw, then threshold float), so the output is
  /// bit-identical to calling Sample() out.size() times with the same Rng.
  ///
  /// The per-draw ZCHECK is hoisted out; draws run in chunks of 64 as two
  /// flat passes: phase 1 generates (index, threshold) pairs and prefetches
  /// each bucket as soon as its index is known, phase 2 resolves the chunk
  /// as a branch-free gather/compare loop (AVX2 gather when available,
  /// auto-vectorizable scalar otherwise).
  void SampleBatch(Rng* rng, std::span<uint32_t> out) const {
    ZCHECK(!buckets_.empty()) << "sampling from empty alias table";
    const uint64_t n = buckets_.size();
    constexpr size_t kChunk = 64;
    uint32_t idx[kChunk];
    float u[kChunk];
    size_t done = 0;
    while (done < out.size()) {
      const size_t m = std::min(kChunk, out.size() - done);
      for (size_t j = 0; j < m; ++j) {
        idx[j] = static_cast<uint32_t>(rng->Uniform(n));
        u[j] = rng->UniformFloat();
        __builtin_prefetch(&buckets_[idx[j]], /*rw=*/0, /*locality=*/1);
      }
      ResolveChunk(idx, u, m, out.data() + done);
      done += m;
    }
  }

  size_t size() const { return buckets_.size(); }
  bool empty() const { return buckets_.empty(); }

  /// Memory footprint in bytes (for engine storage accounting).
  size_t MemoryBytes() const { return buckets_.size() * sizeof(Bucket); }

 private:
  /// out[j] = u[j] < prob[idx[j]] ? idx[j] : alias[idx[j]] for j in [0, m).
  void ResolveChunk(const uint32_t* idx, const float* u, size_t m,
                    uint32_t* out) const {
    size_t j = 0;
#if defined(__AVX2__)
    // Each bucket is one 64-bit lane: gather 4 buckets, split the even
    // 32-bit lanes (prob) from the odd (alias), compare, blend.
    const __m256i kDeinterleave = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
    for (; j + 4 <= m; j += 4) {
      const __m128i vidx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + j));
      const __m256i buck = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(buckets_.data()), vidx,
          /*scale=*/8);
      const __m256i split = _mm256_permutevar8x32_epi32(buck, kDeinterleave);
      const __m128 prob = _mm_castsi128_ps(_mm256_castsi256_si128(split));
      const __m128i alias = _mm256_extracti128_si256(split, 1);
      const __m128 accept = _mm_cmplt_ps(_mm_loadu_ps(u + j), prob);
      const __m128i picked =
          _mm_blendv_epi8(alias, vidx, _mm_castps_si128(accept));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j), picked);
    }
#endif
    for (; j < m; ++j) {
      const Bucket b = buckets_[idx[j]];
      out[j] = u[j] < b.prob ? idx[j] : b.alias;
    }
  }

  std::vector<Bucket> buckets_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_ALIAS_TABLE_H_
