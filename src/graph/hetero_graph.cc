#include "graph/hetero_graph.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace zoomer {
namespace graph {

const char* NodeTypeName(NodeType t) {
  switch (t) {
    case NodeType::kUser: return "user";
    case NodeType::kQuery: return "query";
    case NodeType::kItem: return "item";
  }
  return "?";
}

const char* RelationKindName(RelationKind k) {
  switch (k) {
    case RelationKind::kClick: return "click";
    case RelationKind::kSession: return "session";
    case RelationKind::kSimilarity: return "similarity";
  }
  return "?";
}

void HeteroGraph::SampleManyNeighbors(std::span<const NodeId> nodes, int k,
                                      Rng* rng,
                                      std::vector<NodeId>* out) const {
  const size_t kk = static_cast<size_t>(std::max(k, 0));
  out->assign(nodes.size() * kk, NodeId{-1});
  if (k <= 0) return;
  std::vector<uint32_t> pos(kk);
  for (size_t r = 0; r < nodes.size(); ++r) {
    if (r + 1 < nodes.size()) {
      // Touch the next node's row start and alias header one node ahead so
      // its lines are in flight while this node's draws resolve.
      const NodeId nxt = nodes[r + 1];
      __builtin_prefetch(nbr_id_.data() + offsets_[nxt], /*rw=*/0,
                         /*locality=*/1);
      __builtin_prefetch(alias_.data() + nxt, /*rw=*/0, /*locality=*/1);
    }
    const NodeId id = nodes[r];
    if (degree(id) == 0) continue;
    alias_[id].SampleBatch(rng, {pos.data(), kk});
    NodeId* row = out->data() + r * kk;
    const NodeId* ids = nbr_id_.data() + offsets_[id];
    for (size_t j = 0; j < kk; ++j) row[j] = ids[pos[j]];
  }
}

std::vector<NodeId> HeteroGraph::SampleNeighborsUniform(NodeId id, int k,
                                                        Rng* rng) const {
  std::vector<NodeId> out;
  const int64_t deg = degree(id);
  if (deg == 0 || k <= 0) return out;
  out.reserve(k);
  if (deg <= k) {
    auto ids = neighbor_ids(id);
    out.assign(ids.begin(), ids.end());
    return out;
  }
  // Floyd's algorithm for k distinct positions out of deg.
  std::vector<int64_t> chosen;
  chosen.reserve(k);
  for (int64_t j = deg - k; j < deg; ++j) {
    int64_t t = static_cast<int64_t>(rng->Uniform(static_cast<uint64_t>(j + 1)));
    if (std::find(chosen.begin(), chosen.end(), t) != chosen.end()) t = j;
    chosen.push_back(t);
  }
  for (int64_t pos : chosen) out.push_back(nbr_id_[offsets_[id] + pos]);
  return out;
}

size_t HeteroGraph::MemoryBytes() const {
  size_t bytes = 0;
  bytes += types_.size() * sizeof(NodeType);
  bytes += contents_.size() * sizeof(float);
  bytes += slot_ids_.size() * sizeof(int64_t);
  bytes += slot_offsets_.size() * sizeof(int64_t);
  bytes += offsets_.size() * sizeof(int64_t);
  bytes += nbr_id_.size() * sizeof(NodeId);
  bytes += nbr_weight_.size() * sizeof(float);
  bytes += nbr_kind_.size() * sizeof(RelationKind);
  bytes += type_offsets_.size() * sizeof(int64_t);
  for (const auto& a : alias_) bytes += a.MemoryBytes();
  return bytes;
}

std::string HeteroGraph::DebugString() const {
  std::ostringstream os;
  os << "HeteroGraph{nodes=" << num_nodes() << " (user="
     << num_nodes_of_type(NodeType::kUser)
     << ", query=" << num_nodes_of_type(NodeType::kQuery)
     << ", item=" << num_nodes_of_type(NodeType::kItem)
     << "), half_edges=" << num_edges() << ", content_dim=" << content_dim_
     << ", bytes=" << MemoryBytes() << "}";
  return os.str();
}

NodeId HeteroGraphBuilder::AddNode(NodeType type, std::vector<float> content,
                                   std::vector<int64_t> slots) {
  ZCHECK_EQ(static_cast<int>(content.size()), content_dim_)
      << "content dim mismatch";
  const NodeId id = static_cast<NodeId>(types_.size());
  types_.push_back(type);
  contents_.insert(contents_.end(), content.begin(), content.end());
  slot_ids_.insert(slot_ids_.end(), slots.begin(), slots.end());
  slot_offsets_.push_back(static_cast<int64_t>(slot_ids_.size()));
  return id;
}

Status HeteroGraphBuilder::AddEdge(NodeId a, NodeId b, RelationKind kind,
                                   float weight) {
  const auto n = static_cast<NodeId>(types_.size());
  if (a < 0 || a >= n || b < 0 || b >= n) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (a == b) {
    return Status::InvalidArgument("self-loops are not allowed");
  }
  if (weight < 0.0f) {
    return Status::InvalidArgument("edge weight must be non-negative");
  }
  edges_.push_back({a, b, kind, weight});
  return Status::OK();
}

HeteroGraph HeteroGraphBuilder::Build() {
  HeteroGraph g;
  const int64_t n = num_nodes();
  g.content_dim_ = content_dim_;
  g.types_ = std::move(types_);
  g.contents_ = std::move(contents_);
  g.slot_ids_ = std::move(slot_ids_);
  g.slot_offsets_ = std::move(slot_offsets_);
  for (NodeType t : g.types_) ++g.type_counts_[static_cast<int>(t)];

  // Degree count (each undirected edge contributes a half-edge at both ends).
  g.offsets_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.a + 1];
    ++g.offsets_[e.b + 1];
  }
  for (int64_t i = 0; i < n; ++i) g.offsets_[i + 1] += g.offsets_[i];

  const int64_t total = g.offsets_[n];
  g.nbr_id_.resize(total);
  g.nbr_weight_.resize(total);
  g.nbr_kind_.resize(total);
  std::vector<int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.nbr_id_[cursor[e.a]] = e.b;
    g.nbr_weight_[cursor[e.a]] = e.weight;
    g.nbr_kind_[cursor[e.a]] = e.kind;
    ++cursor[e.a];
    g.nbr_id_[cursor[e.b]] = e.a;
    g.nbr_weight_[cursor[e.b]] = e.weight;
    g.nbr_kind_[cursor[e.b]] = e.kind;
    ++cursor[e.b];
  }
  edges_.clear();

  // Sort each neighbor block by (neighbor type, kind, id) and record typed
  // sub-offsets.
  g.type_offsets_.assign(n * (kNumNodeTypes + 1), 0);
  std::vector<int64_t> perm;
  std::vector<NodeId> tmp_id;
  std::vector<float> tmp_w;
  std::vector<RelationKind> tmp_k;
  for (int64_t v = 0; v < n; ++v) {
    const int64_t begin = g.offsets_[v];
    const int64_t deg = g.offsets_[v + 1] - begin;
    perm.resize(deg);
    std::iota(perm.begin(), perm.end(), int64_t{0});
    std::sort(perm.begin(), perm.end(), [&](int64_t x, int64_t y) {
      const NodeId ax = g.nbr_id_[begin + x], ay = g.nbr_id_[begin + y];
      const auto tx = static_cast<int>(g.types_[ax]);
      const auto ty = static_cast<int>(g.types_[ay]);
      if (tx != ty) return tx < ty;
      const auto kx = static_cast<int>(g.nbr_kind_[begin + x]);
      const auto ky = static_cast<int>(g.nbr_kind_[begin + y]);
      if (kx != ky) return kx < ky;
      return ax < ay;
    });
    tmp_id.resize(deg);
    tmp_w.resize(deg);
    tmp_k.resize(deg);
    for (int64_t i = 0; i < deg; ++i) {
      tmp_id[i] = g.nbr_id_[begin + perm[i]];
      tmp_w[i] = g.nbr_weight_[begin + perm[i]];
      tmp_k[i] = g.nbr_kind_[begin + perm[i]];
    }
    std::copy(tmp_id.begin(), tmp_id.end(), g.nbr_id_.begin() + begin);
    std::copy(tmp_w.begin(), tmp_w.end(), g.nbr_weight_.begin() + begin);
    std::copy(tmp_k.begin(), tmp_k.end(), g.nbr_kind_.begin() + begin);

    // Typed offsets: absolute positions of each type's sub-range.
    const int64_t base = v * (kNumNodeTypes + 1);
    int64_t pos = begin;
    for (int t = 0; t < kNumNodeTypes; ++t) {
      g.type_offsets_[base + t] = pos;
      while (pos < begin + deg &&
             static_cast<int>(g.types_[g.nbr_id_[pos]]) == t) {
        ++pos;
      }
    }
    g.type_offsets_[base + kNumNodeTypes] = pos;
  }

  // Per-node alias tables over edge weights.
  g.alias_.resize(n);
  std::vector<double> w;
  for (int64_t v = 0; v < n; ++v) {
    const int64_t begin = g.offsets_[v];
    const int64_t deg = g.offsets_[v + 1] - begin;
    if (deg == 0) continue;
    w.assign(g.nbr_weight_.begin() + begin, g.nbr_weight_.begin() + begin + deg);
    g.alias_[v].Build(w);
  }
  return g;
}

}  // namespace graph
}  // namespace zoomer
