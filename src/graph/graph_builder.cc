#include "graph/graph_builder.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>

#include "common/logging.h"

namespace zoomer {
namespace graph {

namespace {

// Key identifying one undirected edge of one kind.
struct EdgeKey {
  NodeId a, b;
  RelationKind kind;
  bool operator<(const EdgeKey& o) const {
    return std::tie(a, b, kind) < std::tie(o.a, o.b, o.kind);
  }
};

}  // namespace

StatusOr<HeteroGraph> BuildGraphFromLogs(const std::vector<NodeSpec>& nodes,
                                         const SessionLog& log,
                                         const GraphBuildOptions& options) {
  if (nodes.empty()) {
    return Status::InvalidArgument("node list is empty");
  }
  const int content_dim = static_cast<int>(nodes[0].content.size());
  for (const auto& n : nodes) {
    if (static_cast<int>(n.content.size()) != content_dim) {
      return Status::InvalidArgument("inconsistent content dims");
    }
  }

  HeteroGraphBuilder builder(content_dim);
  for (const auto& n : nodes) {
    builder.AddNode(n.type, n.content, n.slots);
  }

  // Interaction + session edges, coalesced by accumulating weight.
  std::map<EdgeKey, float> acc;
  auto add = [&](NodeId a, NodeId b, RelationKind kind, float w) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    if (options.coalesce_duplicate_edges) {
      acc[{a, b, kind}] += w;
    } else {
      acc.emplace(EdgeKey{a, b, kind}, w);
    }
  };

  const auto n_total = static_cast<NodeId>(nodes.size());
  for (const auto& s : log) {
    if (options.time_window_seconds > 0 &&
        s.timestamp >= options.time_window_seconds) {
      continue;
    }
    if (s.user < 0 || s.user >= n_total || s.query < 0 || s.query >= n_total) {
      return Status::InvalidArgument("log references unknown node id");
    }
    // user -- searched query
    add(s.user, s.query, RelationKind::kClick, 1.0f);
    for (size_t i = 0; i < s.clicks.size(); ++i) {
      const NodeId c = s.clicks[i];
      if (c < 0 || c >= n_total) {
        return Status::InvalidArgument("log references unknown clicked item");
      }
      // clicked item -- query
      add(c, s.query, RelationKind::kClick, 1.0f);
      // user -- clicked item (interaction feedback)
      add(s.user, c, RelationKind::kClick, 1.0f);
      // adjacent clicks in the same session
      if (i + 1 < s.clicks.size() && s.clicks[i + 1] != c) {
        add(c, s.clicks[i + 1], RelationKind::kSession, 1.0f);
      }
    }
  }

  // Similarity edges between queries and items via MinHash + LSH.
  if (options.add_similarity_edges) {
    MinHasher hasher(options.lsh_bands * options.lsh_rows);
    MinHashLsh lsh(options.lsh_bands, options.lsh_rows);
    std::unordered_map<int64_t, std::vector<uint64_t>> sigs;
    for (NodeId id = 0; id < n_total; ++id) {
      const auto& n = nodes[id];
      if (n.type == NodeType::kUser || n.tokens.empty()) continue;
      auto sig = hasher.Signature(n.tokens);
      lsh.Insert(id, sig);
      sigs.emplace(id, std::move(sig));
    }
    std::vector<int> sim_degree(n_total, 0);
    for (const auto& [a, b] : lsh.CandidatePairs()) {
      if (sim_degree[a] >= options.max_similarity_degree ||
          sim_degree[b] >= options.max_similarity_degree) {
        continue;
      }
      const double jac = MinHasher::EstimateJaccard(sigs.at(a), sigs.at(b));
      if (jac < options.similarity_threshold) continue;
      add(a, b, RelationKind::kSimilarity, static_cast<float>(jac));
      ++sim_degree[a];
      ++sim_degree[b];
    }
  }

  for (const auto& [key, w] : acc) {
    Status st = builder.AddEdge(key.a, key.b, key.kind, w);
    if (!st.ok()) return st;
  }
  return builder.Build();
}

}  // namespace graph
}  // namespace zoomer
