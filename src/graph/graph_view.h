// Unified read view over a heterogeneous graph (ROADMAP: delta-aware ROI
// sampling). The ROI sampler, relevance scorer, and trainer all consume this
// interface instead of the concrete CSR, so the same sampling code runs over
//   - the immutable offline HeteroGraph (CsrGraphView, zero-copy spans), and
//   - the streaming delta overlay (streaming::DynamicGraphView, epoch-pinned
//     snapshots that merge base CSR ranges with per-node delta suffixes).
// A training run attached to the ingest pipeline therefore scores neighbors
// over base+delta without waiting for Compact().
//
// Neighbor iteration hands out a NeighborBlock of parallel spans. The static
// view points the spans straight into the CSR arrays; dynamic views resolve
// the merged (coalesced) block into caller-provided scratch, so the hot
// static path stays allocation-free and the delta path pays one merge. The
// spans are valid until the next Neighbors() call on the same scratch or any
// mutation of the underlying view.
#ifndef ZOOMER_GRAPH_GRAPH_VIEW_H_
#define ZOOMER_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "graph/hetero_graph.h"

namespace zoomer {
namespace graph {

/// Resolved neighbor block of one node: parallel (id, weight, kind) ranges.
struct NeighborBlock {
  std::span<const NodeId> ids;
  std::span<const float> weights;
  std::span<const RelationKind> kinds;

  int64_t size() const { return static_cast<int64_t>(ids.size()); }
  bool empty() const { return ids.empty(); }
};

/// Caller-owned buffers a view may resolve a merged neighbor block into.
/// Reuse one scratch across calls to amortize allocation.
struct NeighborScratch {
  std::vector<NodeId> ids;
  std::vector<float> weights;
  std::vector<RelationKind> kinds;
};

/// Zero-copy typed sub-block of a node's CSR neighbor arrays. Works over
/// any CSR-shaped graph exposing neighbor_ids/NeighborsOfType/
/// neighbor_weights/neighbor_kinds (the monolithic HeteroGraph and the
/// node-partitioned SegmentedCsr). Typed-range offsets may be absolute into
/// global arrays (HeteroGraph) or segment-local (SegmentedCsr); rebasing
/// the typed span onto the node's block normalizes both — the one place
/// that arithmetic lives.
template <typename Csr>
inline NeighborBlock TypedCsrBlock(const Csr& g, NodeId id, NodeType t) {
  const auto ids = g.neighbor_ids(id);
  const auto typed = g.NeighborsOfType(id, t);
  const size_t rel = static_cast<size_t>(typed.data() - ids.data());
  return {typed, g.neighbor_weights(id).subspan(rel, typed.size()),
          g.neighbor_kinds(id).subspan(rel, typed.size())};
}

/// Read interface shared by the static CSR and the streaming delta overlay.
class GraphView {
 public:
  virtual ~GraphView() = default;

  virtual int64_t num_nodes() const = 0;
  virtual int content_dim() const = 0;
  virtual NodeType node_type(NodeId id) const = 0;

  /// Dense content vector (content_dim floats) used by relevance scoring.
  virtual const float* content(NodeId id) const = 0;

  /// Categorical feature-slot ids embedded by the models.
  virtual std::span<const int64_t> slots(NodeId id) const = 0;

  /// Half-edge count visible through this view. Dynamic views count delta
  /// entries with parallel-edge semantics, so this is an upper bound on
  /// Neighbors().size() (which coalesces duplicates by (neighbor, kind)).
  virtual int64_t degree(NodeId id) const = 0;

  /// Merged neighbor block of `id`; may resolve into `scratch`.
  virtual NeighborBlock Neighbors(NodeId id, NeighborScratch* scratch) const = 0;

  /// Neighbors of `id` whose endpoint is of type `t` — the grouping
  /// edge-level attention consumes (it only compares neighbors of one
  /// type). The static view hands out the CSR's contiguous typed sub-range
  /// zero-copy; the dynamic view merges the typed base range with only the
  /// matching delta entries (no full-neighborhood merge). The default
  /// filters Neighbors() into `scratch`, correct for any view.
  virtual NeighborBlock NeighborsOfType(NodeId id, NodeType t,
                                        NeighborScratch* scratch) const;

  /// One weighted neighbor draw (alias table on the static path, two-level
  /// base+delta resampling on the dynamic path). -1 for isolated nodes.
  virtual NodeId SampleNeighbor(NodeId id, Rng* rng) const = 0;

  /// Batched weighted draws: k draws (with replacement) per node, written
  /// row-major into `out` (resized to nodes.size()*k; isolated nodes leave
  /// -1 rows). Every implementation consumes the Rng draw-for-draw exactly
  /// like k SampleNeighbor calls per node in order, so the default loop and
  /// the batched overrides are bit-identical under a fixed seed. Overrides
  /// (CsrGraphView, SegmentedCsrView, the dynamic snapshot) pin the epoch
  /// snapshot once per batch, prefetch CSR rows and alias buckets one node
  /// ahead, and draw through AliasTable::SampleBatch.
  virtual void SampleManyNeighbors(std::span<const NodeId> nodes, int k,
                                   Rng* rng, std::vector<NodeId>* out) const;

  /// Up to k distinct weighted draws with bounded (4k) retries. The default
  /// loops SampleNeighbor; dynamic views override to batch the draws under
  /// one lock acquisition.
  virtual std::vector<NodeId> SampleDistinctNeighbors(NodeId id, int k,
                                                      Rng* rng) const;

  /// Epoch of the freshest edit visible through this view (0 = static).
  virtual uint64_t epoch() const { return 0; }
};

/// Zero-copy adapter over the immutable CSR. Cheap to construct (stores one
/// pointer); `base` must outlive the view.
class CsrGraphView final : public GraphView {
 public:
  explicit CsrGraphView(const HeteroGraph* base) : g_(base) {}
  explicit CsrGraphView(const HeteroGraph& base) : g_(&base) {}

  int64_t num_nodes() const override { return g_->num_nodes(); }
  int content_dim() const override { return g_->content_dim(); }
  NodeType node_type(NodeId id) const override { return g_->node_type(id); }
  const float* content(NodeId id) const override { return g_->content(id); }
  std::span<const int64_t> slots(NodeId id) const override {
    return g_->slots(id);
  }
  int64_t degree(NodeId id) const override { return g_->degree(id); }
  NeighborBlock Neighbors(NodeId id, NeighborScratch*) const override {
    return {g_->neighbor_ids(id), g_->neighbor_weights(id),
            g_->neighbor_kinds(id)};
  }
  NeighborBlock NeighborsOfType(NodeId id, NodeType t,
                                NeighborScratch*) const override {
    return TypedCsrBlock(*g_, id, t);
  }
  NodeId SampleNeighbor(NodeId id, Rng* rng) const override {
    return g_->SampleNeighbor(id, rng);
  }
  void SampleManyNeighbors(std::span<const NodeId> nodes, int k, Rng* rng,
                           std::vector<NodeId>* out) const override {
    g_->SampleManyNeighbors(nodes, k, rng, out);
  }

  const HeteroGraph& csr() const { return *g_; }

 private:
  const HeteroGraph* g_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_GRAPH_VIEW_H_
