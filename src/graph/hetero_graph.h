// Heterogeneous user-query-item retrieval graph (paper Sec. II).
//
// Nodes carry (a) a dense content vector used for relevance scoring (eq. 5)
// and similarity edges, and (b) categorical feature-slot ids embedded by the
// models (paper Table I: User = {ID, gender, membership}, Query = {category,
// terms}, Item = {ID, category, terms, brand, shop}).
//
// Edges carry a relation kind: interaction (click), session (adjacent clicks
// in a session), or similarity (minHash Jaccard, weighted). Storage is CSR
// with each node's neighbor block sorted by (neighbor type, kind) so typed
// sub-ranges — needed by edge-level attention, which only compares neighbors
// of the same type — are contiguous. Every node also carries an alias table
// over its (weighted) neighbor block for O(1) sampling.
#ifndef ZOOMER_GRAPH_HETERO_GRAPH_H_
#define ZOOMER_GRAPH_HETERO_GRAPH_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "graph/alias_table.h"

namespace zoomer {
namespace graph {

using NodeId = int64_t;

enum class NodeType : uint8_t { kUser = 0, kQuery = 1, kItem = 2 };
inline constexpr int kNumNodeTypes = 3;

enum class RelationKind : uint8_t {
  kClick = 0,       // user-query, query-item interaction edges
  kSession = 1,     // adjacent clicked items within one session
  kSimilarity = 2,  // minHash Jaccard content similarity
};
inline constexpr int kNumRelationKinds = 3;

const char* NodeTypeName(NodeType t);
const char* RelationKindName(RelationKind k);

/// One outgoing edge as seen from a node's neighbor block.
struct NeighborEntry {
  NodeId neighbor;
  float weight;
  RelationKind kind;
};

/// Immutable heterogeneous graph. Construct via HeteroGraphBuilder.
class HeteroGraph {
 public:
  HeteroGraph() = default;

  int64_t num_nodes() const { return static_cast<int64_t>(types_.size()); }
  int64_t num_edges() const {
    return static_cast<int64_t>(nbr_id_.size());  // directed half-edges
  }
  int64_t num_nodes_of_type(NodeType t) const {
    return type_counts_[static_cast<int>(t)];
  }
  int content_dim() const { return content_dim_; }

  NodeType node_type(NodeId id) const {
    ZCHECK(id >= 0 && id < num_nodes());
    return types_[id];
  }

  /// Dense content vector (content_dim floats).
  const float* content(NodeId id) const {
    return contents_.data() + id * content_dim_;
  }

  /// Categorical feature-slot ids of a node.
  std::span<const int64_t> slots(NodeId id) const {
    return {slot_ids_.data() + slot_offsets_[id],
            static_cast<size_t>(slot_offsets_[id + 1] - slot_offsets_[id])};
  }

  int64_t degree(NodeId id) const { return offsets_[id + 1] - offsets_[id]; }

  /// Full neighbor block of a node, sorted by (neighbor type, kind).
  std::span<const NodeId> neighbor_ids(NodeId id) const {
    return {nbr_id_.data() + offsets_[id],
            static_cast<size_t>(degree(id))};
  }
  std::span<const float> neighbor_weights(NodeId id) const {
    return {nbr_weight_.data() + offsets_[id],
            static_cast<size_t>(degree(id))};
  }
  std::span<const RelationKind> neighbor_kinds(NodeId id) const {
    return {nbr_kind_.data() + offsets_[id],
            static_cast<size_t>(degree(id))};
  }

  /// Contiguous sub-range [begin, end) within the neighbor block holding
  /// neighbors of the given type.
  std::pair<int64_t, int64_t> TypedRange(NodeId id, NodeType t) const {
    const int64_t base = id * (kNumNodeTypes + 1);
    return {type_offsets_[base + static_cast<int>(t)],
            type_offsets_[base + static_cast<int>(t) + 1]};
  }

  /// Neighbor ids of a given type.
  std::span<const NodeId> NeighborsOfType(NodeId id, NodeType t) const {
    auto [b, e] = TypedRange(id, t);
    return {nbr_id_.data() + b, static_cast<size_t>(e - b)};
  }

  /// O(1) weighted neighbor draw via the per-node alias table.
  /// Returns -1 for isolated nodes.
  NodeId SampleNeighbor(NodeId id, Rng* rng) const {
    if (degree(id) == 0) return -1;
    const size_t k = alias_[id].Sample(rng);
    return nbr_id_[offsets_[id] + static_cast<int64_t>(k)];
  }

  /// Batched weighted draws: k draws (with replacement) per node, written
  /// row-major into `out` (nodes.size()*k entries; isolated nodes leave -1
  /// rows). Bit-identical to k SampleNeighbor calls per node in order, but
  /// software-prefetches the next node's CSR row and alias table one node
  /// ahead and draws through AliasTable::SampleBatch.
  void SampleManyNeighbors(std::span<const NodeId> nodes, int k, Rng* rng,
                           std::vector<NodeId>* out) const;

  /// Uniform sample of up to k distinct positions from the neighbor block
  /// (with replacement if degree < k and allow_repeat).
  std::vector<NodeId> SampleNeighborsUniform(NodeId id, int k, Rng* rng) const;

  /// Approximate resident bytes of the CSR structures and alias tables.
  size_t MemoryBytes() const;

  std::string DebugString() const;

 private:
  friend class HeteroGraphBuilder;

  int content_dim_ = 0;
  std::vector<NodeType> types_;
  std::array<int64_t, kNumNodeTypes> type_counts_ = {0, 0, 0};
  std::vector<float> contents_;       // num_nodes * content_dim
  std::vector<int64_t> slot_ids_;     // concatenated slot ids
  std::vector<int64_t> slot_offsets_; // num_nodes + 1

  std::vector<int64_t> offsets_;      // num_nodes + 1
  std::vector<NodeId> nbr_id_;
  std::vector<float> nbr_weight_;
  std::vector<RelationKind> nbr_kind_;
  // per node: kNumNodeTypes+1 absolute offsets into the neighbor arrays
  std::vector<int64_t> type_offsets_;
  std::vector<AliasTable> alias_;
};

/// Mutable builder. Nodes first, then edges, then Build().
class HeteroGraphBuilder {
 public:
  explicit HeteroGraphBuilder(int content_dim) : content_dim_(content_dim) {}

  /// Adds a node and returns its id. content must have content_dim entries.
  NodeId AddNode(NodeType type, std::vector<float> content,
                 std::vector<int64_t> slots);

  /// Adds an undirected edge (stored as two half-edges). Self-loops and
  /// invalid ids are rejected.
  Status AddEdge(NodeId a, NodeId b, RelationKind kind, float weight = 1.0f);

  int64_t num_nodes() const { return static_cast<int64_t>(types_.size()); }
  int64_t num_edges_added() const { return static_cast<int64_t>(edges_.size()); }

  /// Finalizes into an immutable HeteroGraph. The builder is left empty.
  HeteroGraph Build();

 private:
  struct Edge {
    NodeId a, b;
    RelationKind kind;
    float weight;
  };

  int content_dim_;
  std::vector<NodeType> types_;
  std::vector<float> contents_;
  std::vector<int64_t> slot_ids_;
  std::vector<int64_t> slot_offsets_{0};
  std::vector<Edge> edges_;
};

}  // namespace graph
}  // namespace zoomer

#endif  // ZOOMER_GRAPH_HETERO_GRAPH_H_
