#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace zoomer {
namespace eval {

double Auc(const std::vector<float>& scores, const std::vector<float>& labels) {
  ZCHECK_EQ(scores.size(), labels.size());
  // Rank-sum estimator with midranks for ties.
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  size_t n_pos = 0;
  for (size_t k = 0; k < n; ++k) {
    if (labels[k] > 0.5f) {
      pos_rank_sum += rank[k];
      ++n_pos;
    }
  }
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  return (pos_rank_sum - static_cast<double>(n_pos) *
                             (static_cast<double>(n_pos) + 1.0) / 2.0) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double Mae(const std::vector<float>& predictions,
           const std::vector<float>& labels) {
  ZCHECK_EQ(predictions.size(), labels.size());
  if (predictions.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    s += std::abs(static_cast<double>(predictions[i]) - labels[i]);
  }
  return s / static_cast<double>(predictions.size());
}

double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& labels) {
  ZCHECK_EQ(predictions.size(), labels.size());
  if (predictions.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = static_cast<double>(predictions[i]) - labels[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predictions.size()));
}

double HitRateAtK(const std::vector<int>& positive_ranks, int k) {
  if (positive_ranks.empty()) return 0.0;
  size_t hits = 0;
  for (int r : positive_ranks) {
    if (r < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(positive_ranks.size());
}

int RankOf(float target_score, const std::vector<float>& candidate_scores) {
  int rank = 0;
  for (float s : candidate_scores) {
    if (s >= target_score) ++rank;  // ties rank the candidate above target
  }
  return rank;
}

std::vector<std::pair<double, double>> EmpiricalCdf(
    const std::vector<double>& values) {
  std::vector<std::pair<double, double>> cdf;
  if (values.empty()) return cdf;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  cdf.reserve(sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i) {
    cdf.emplace_back(sorted[i], static_cast<double>(i + 1) /
                                    static_cast<double>(sorted.size()));
  }
  return cdf;
}

double FractionBelow(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t below = 0;
  for (double v : values) {
    if (v < threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(values.size());
}

double LiftPercent(double treatment, double control) {
  if (control == 0.0) return 0.0;
  return (treatment - control) / control * 100.0;
}

}  // namespace eval
}  // namespace zoomer
