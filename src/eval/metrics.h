// Offline evaluation metrics from paper Sec. VII-A: AUC, HitRate@K, MAE,
// RMSE, plus the CDF helper used by the Fig. 4(c) motivation measurement and
// the online metrics (CTR / PPC / RPM) used by the A/B-test simulation.
#ifndef ZOOMER_EVAL_METRICS_H_
#define ZOOMER_EVAL_METRICS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace zoomer {
namespace eval {

/// Area under the ROC curve via the rank-sum (Mann-Whitney) estimator.
/// Ties receive half credit. Returns 0.5 when either class is absent.
double Auc(const std::vector<float>& scores, const std::vector<float>& labels);

/// Mean absolute error between predictions and labels.
double Mae(const std::vector<float>& predictions,
           const std::vector<float>& labels);

/// Root mean squared error between predictions and labels.
double Rmse(const std::vector<float>& predictions,
            const std::vector<float>& labels);

/// HitRate@K (paper Sec. VII-A): fraction of test interactions whose clicked
/// item ranks within the top-K of the scored candidate list. Each entry of
/// `rankings` is the 0-based rank the positive item achieved in its pool.
double HitRateAtK(const std::vector<int>& positive_ranks, int k);

/// Rank of a target score within a candidate score list (0 = best). Ties
/// count as better to be conservative.
int RankOf(float target_score, const std::vector<float>& candidate_scores);

/// Empirical CDF: returns sorted (value, cumulative fraction) pairs.
std::vector<std::pair<double, double>> EmpiricalCdf(
    const std::vector<double>& values);

/// Fraction of values strictly below the threshold.
double FractionBelow(const std::vector<double>& values, double threshold);

/// Online A/B metrics (paper Sec. VII-A):
///   CTR = clicks / impressions
///   PPC = ad spend / clicks
///   RPM = ad revenue / impressions * 1000
struct OnlineMetrics {
  int64_t impressions = 0;
  int64_t clicks = 0;
  double revenue = 0.0;

  double Ctr() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(clicks) / static_cast<double>(impressions);
  }
  double Ppc() const {
    return clicks == 0 ? 0.0 : revenue / static_cast<double>(clicks);
  }
  double Rpm() const {
    return impressions == 0
               ? 0.0
               : revenue / static_cast<double>(impressions) * 1000.0;
  }
};

/// Relative lift of treatment over control, in percent.
double LiftPercent(double treatment, double control);

}  // namespace eval
}  // namespace zoomer

#endif  // ZOOMER_EVAL_METRICS_H_
