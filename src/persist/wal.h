// Durable tier of the streaming delta log (paper Sec. VI: the production
// deployment re-ingests behavior logs continuously; a crash must not lose
// the tail between two checkpoints). The in-memory GraphDeltaLog stays the
// serving-path source of truth; this layer tees every appended batch into
// an append-only write-ahead log on disk, rotated at checkpoint boundaries
// and garbage-collected once a checkpoint's epoch covers a file.
//
// Record format (little-endian): [u32 payload_len][u32 crc32][payload],
// payload = epoch, shard, edge events, node events. A record whose length
// or payload is cut short *at end of file* is a torn final write — dropped
// and counted, never an error (the batch was not acknowledged as durable).
// A CRC mismatch, or a short record with more records behind it, is
// corruption and fails recovery with a clear Status.
#ifndef ZOOMER_PERSIST_WAL_H_
#define ZOOMER_PERSIST_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace persist {

/// One decoded WAL record: the log shard the batch was appended to, plus
/// the batch itself (original epoch preserved).
struct WalRecord {
  int shard = 0;
  streaming::DeltaBatch batch;
};

/// Result of reading one WAL file front to back.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// 1 if the final record was torn (short write at EOF) and dropped.
  int torn_tail_records = 0;
};

/// Reads every record of `path`, verifying per-record CRCs. A torn final
/// record is dropped (see file comment); anything else malformed is an
/// InvalidArgument. A missing file is NotFound.
StatusOr<WalReadResult> ReadWal(const std::string& path);

/// Append-only writer over one WAL file. Thread-safe; fsync batching is
/// the caller's policy (see DeltaLogPersister::Options).
class WalWriter {
 public:
  /// Creates (truncates) `path`.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& path);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record (buffered; durable after the next Sync()).
  Status Append(int shard, const streaming::DeltaBatch& batch);
  /// Flushes libc buffers and fsyncs the file.
  Status Sync();
  /// Sync + close; further Appends fail.
  Status Close();

  const std::string& path() const { return path_; }
  int64_t bytes_written() const { return bytes_written_; }
  int64_t records_written() const { return records_written_; }
  /// Highest epoch appended so far (0 if empty) — the file's content is a
  /// subset of epochs <= this, which names the successor file at rotation.
  uint64_t max_epoch() const { return max_epoch_; }

 private:
  WalWriter(std::FILE* f, std::string path) : file_(f), path_(std::move(path)) {}

  std::mutex mu_;
  std::FILE* file_ = nullptr;  // guarded by mu_
  std::string path_;
  int64_t bytes_written_ = 0;   // guarded by mu_
  int64_t records_written_ = 0; // guarded by mu_
  uint64_t max_epoch_ = 0;      // guarded by mu_
};

/// Name of the WAL file whose first possible epoch is `start_epoch`
/// ("wal-<start_epoch, zero-padded>.log"); ParseWalFileName inverts it.
std::string WalFileName(uint64_t start_epoch);
/// Extracts the start epoch from a WAL file name (not a path); returns
/// false if `name` is not a WAL file name.
bool ParseWalFileName(const std::string& name, uint64_t* start_epoch);

/// Tees a GraphDeltaLog onto disk and owns the WAL file lifecycle:
///
///   Start()        attach the append observer; open a fresh file named
///                  after the next epoch the log will issue; register a
///                  replay consumer at the given checkpoint epoch so
///                  in-memory truncation never outruns durability.
///   OnCheckpoint(C) rotate (close the active file, open its successor)
///                  and delete every closed file whose entire epoch range
///                  is covered by C; advance the consumer cursor to C.
///   Stop()         detach, sync, close.
///
/// A closed file named wal-<s> followed by a file named wal-<s'> contains
/// only epochs < s' (rotation names the successor after the highest epoch
/// seen, and no append lands in a file after it rotates away), so "delete
/// when C >= s' - 1" never drops an uncheckpointed batch.
struct DeltaLogPersisterOptions {
  /// Fsync after every N appended batches (1 = every batch, group commit
  /// off). Rotation and Stop always sync regardless.
  int fsync_every_batches = 1;
  obs::MetricsRegistry* registry = nullptr;  // null = Global()
};

class DeltaLogPersister {
 public:
  DeltaLogPersister(streaming::GraphDeltaLog* log, std::string dir,
                    DeltaLogPersisterOptions options = {});
  ~DeltaLogPersister();
  DeltaLogPersister(const DeltaLogPersister&) = delete;
  DeltaLogPersister& operator=(const DeltaLogPersister&) = delete;

  /// Begins teeing. `checkpoint_epoch` is the newest durable checkpoint's
  /// epoch (0 if none): the replay consumer starts there, and pre-existing
  /// WAL files in the directory (a recovered process's tail) are adopted
  /// for later garbage collection. The active file is named after
  /// log->last_epoch() + 1.
  Status Start(uint64_t checkpoint_epoch);

  /// Checkpoint barrier: everything at or below `checkpoint_epoch` is
  /// durable in the checkpoint, so rotate and GC files it covers.
  Status OnCheckpoint(uint64_t checkpoint_epoch);

  /// Detaches the observer and closes the active file. Idempotent.
  Status Stop();

  /// Paths of the WAL files currently on disk (closed + active), oldest
  /// first.
  std::vector<std::string> LiveFiles() const;

 private:
  void OnAppend(int shard, const streaming::DeltaBatch& batch);

  streaming::GraphDeltaLog* log_;
  const std::string dir_;
  const DeltaLogPersisterOptions options_;

  obs::Counter* wal_appends_ = nullptr;
  obs::Counter* wal_bytes_ = nullptr;
  obs::Counter* wal_rotations_ = nullptr;
  obs::Counter* wal_sync_failures_ = nullptr;
  obs::Histogram* wal_fsync_latency_us_ = nullptr;

  mutable std::mutex mu_;
  bool started_ = false;                      // guarded by mu_
  int consumer_id_ = -1;                      // guarded by mu_
  int unsynced_batches_ = 0;                  // guarded by mu_
  std::unique_ptr<WalWriter> active_;         // guarded by mu_
  /// Closed files, oldest first: (path, start epoch). The successor's
  /// start epoch bounds each file's content from above.
  std::vector<std::pair<std::string, uint64_t>> closed_;  // guarded by mu_
  uint64_t active_start_ = 0;                 // guarded by mu_
};

}  // namespace persist
}  // namespace zoomer

#endif  // ZOOMER_PERSIST_WAL_H_
