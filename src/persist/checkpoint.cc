#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <set>
#include <tuple>

#include "common/byte_buffer.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/graph_io.h"

namespace zoomer {
namespace persist {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kManifestMagic = 0x5A4F4F4D4D4E4653ull;  // "ZOOMMNFS"
constexpr uint32_t kManifestVersion = 1;
constexpr uint64_t kMaxElems = 1ull << 34;

std::string SegFileName(int64_t s, uint64_t generation) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%06" PRId64 "-g%" PRIu64 ".ckpt", s,
                generation);
  return buf;
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Unavailable("cannot open " + path + " to fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync failed for " + path);
  return Status::OK();
}

void WriteString(ByteWriter* w, const std::string& s) {
  w->Scalar<uint64_t>(s.size());
  w->Bytes(s.data(), s.size());
}

bool ReadString(ByteReader* r, std::string* s) {
  uint64_t n = 0;
  r->Scalar(&n);
  if (!r->ok() || n > r->remaining()) return false;
  s->resize(n);
  r->Bytes(s->data(), n);
  return r->ok();
}

/// In-memory mirror of the MANIFEST payload.
struct Manifest {
  uint64_t checkpoint_epoch = 0;
  uint64_t base_generation = 1;
  int64_t segment_span = 0;
  int64_t coverage = 0;  // base num_nodes — cross-checked after load
  int64_t mint_origin = 0;
  int32_t wal_shards = 4;
  /// Per segment, in index order: (generation, file name, file bytes).
  std::vector<std::tuple<uint64_t, std::string, int64_t>> segments;
  std::vector<uint64_t> folded_birth_epochs;
  std::vector<streaming::DynamicHeteroGraph::RestoredNodeRecord> records;
};

Status SaveManifest(const Manifest& m, const std::string& dir) {
  ByteWriter w;
  w.Scalar<uint64_t>(m.checkpoint_epoch);
  w.Scalar<uint64_t>(m.base_generation);
  w.Scalar<int64_t>(m.segment_span);
  w.Scalar<int64_t>(m.coverage);
  w.Scalar<int64_t>(m.mint_origin);
  w.Scalar<int32_t>(m.wal_shards);
  w.Scalar<uint64_t>(m.segments.size());
  for (const auto& [gen, name, bytes] : m.segments) {
    w.Scalar<uint64_t>(gen);
    WriteString(&w, name);
    w.Scalar<int64_t>(bytes);
  }
  w.Vector(m.folded_birth_epochs);
  w.Scalar<uint64_t>(m.records.size());
  for (const auto& r : m.records) {
    w.Scalar<int64_t>(r.id);
    w.Scalar<uint64_t>(r.birth_epoch);
    w.Scalar<uint8_t>(r.applied ? 1 : 0);
    w.Scalar<uint8_t>(static_cast<uint8_t>(r.type));
    w.Scalar<int64_t>(r.timestamp);
    w.Vector(r.content);
    w.Vector(r.slots);
  }

  const std::string tmp = (fs::path(dir) / "MANIFEST.tmp").string();
  const std::string final_path = (fs::path(dir) / "MANIFEST").string();
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return Status::Unavailable("cannot open " + tmp + " for writing");
    }
    const uint64_t magic = kManifestMagic;
    const uint32_t version = kManifestVersion;
    const uint32_t crc = Crc32(w.data().data(), w.size());
    const uint64_t payload_size = w.size();
    bool ok = std::fwrite(&magic, 1, sizeof(magic), f) == sizeof(magic) &&
              std::fwrite(&version, 1, sizeof(version), f) ==
                  sizeof(version) &&
              std::fwrite(&crc, 1, sizeof(crc), f) == sizeof(crc) &&
              std::fwrite(&payload_size, 1, sizeof(payload_size), f) ==
                  sizeof(payload_size) &&
              std::fwrite(w.data().data(), 1, w.size(), f) == w.size();
    ok = ok && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!ok) return Status::Internal("short write to " + tmp);
  }
  // Atomic publish: a crash leaves either the old manifest or the new one,
  // never a half-written file under the MANIFEST name.
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) return Status::Internal("cannot publish " + final_path);
  // Make the rename itself durable.
  (void)FsyncPath(dir);
  return Status::OK();
}

StatusOr<Manifest> LoadManifest(const std::string& dir) {
  const std::string path = (fs::path(dir) / "MANIFEST").string();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no checkpoint manifest in " + dir);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  uint64_t magic = 0, payload_size = 0;
  uint32_t version = 0, crc = 0;
  if (std::fread(&magic, 1, sizeof(magic), f) != sizeof(magic) ||
      magic != kManifestMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  if (std::fread(&version, 1, sizeof(version), f) != sizeof(version) ||
      version != kManifestVersion) {
    return Status::InvalidArgument("unsupported manifest version in " + path);
  }
  if (std::fread(&crc, 1, sizeof(crc), f) != sizeof(crc) ||
      std::fread(&payload_size, 1, sizeof(payload_size), f) !=
          sizeof(payload_size) ||
      payload_size > (1ull << 34)) {
    return Status::InvalidArgument("corrupt manifest header in " + path);
  }
  std::vector<uint8_t> payload(payload_size);
  if (std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
    return Status::InvalidArgument("truncated manifest " + path);
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::InvalidArgument("manifest CRC mismatch in " + path);
  }

  Manifest m;
  ByteReader r({payload.data(), payload.size()});
  r.Scalar(&m.checkpoint_epoch);
  r.Scalar(&m.base_generation);
  r.Scalar(&m.segment_span);
  r.Scalar(&m.coverage);
  r.Scalar(&m.mint_origin);
  r.Scalar(&m.wal_shards);
  uint64_t num_segments = 0;
  r.Scalar(&num_segments);
  if (!r.ok() || num_segments > kMaxElems) {
    return Status::InvalidArgument("corrupt manifest payload in " + path);
  }
  m.segments.reserve(num_segments);
  for (uint64_t i = 0; i < num_segments; ++i) {
    uint64_t gen = 0;
    std::string name;
    int64_t bytes = 0;
    r.Scalar(&gen);
    if (!ReadString(&r, &name)) {
      return Status::InvalidArgument("corrupt segment entry in " + path);
    }
    r.Scalar(&bytes);
    m.segments.emplace_back(gen, std::move(name), bytes);
  }
  r.Vector(&m.folded_birth_epochs, kMaxElems);
  uint64_t num_records = 0;
  r.Scalar(&num_records);
  if (!r.ok() || num_records > kMaxElems) {
    return Status::InvalidArgument("corrupt manifest record count in " + path);
  }
  m.records.resize(num_records);
  for (auto& rec : m.records) {
    uint8_t applied = 0, type = 0;
    r.Scalar(&rec.id);
    r.Scalar(&rec.birth_epoch);
    r.Scalar(&applied);
    r.Scalar(&type);
    r.Scalar(&rec.timestamp);
    r.Vector(&rec.content, kMaxElems);
    r.Vector(&rec.slots, kMaxElems);
    if (applied > 1 || type >= graph::kNumNodeTypes) {
      return Status::InvalidArgument("corrupt node record in " + path);
    }
    rec.applied = applied != 0;
    rec.type = static_cast<graph::NodeType>(type);
  }
  if (!r.ok() || !r.exhausted()) {
    return Status::InvalidArgument("manifest payload size mismatch in " +
                                   path);
  }
  if (m.segment_span <= 0 || m.coverage < 0 || m.mint_origin < 0 ||
      m.wal_shards <= 0 || m.wal_shards > 4096) {
    return Status::InvalidArgument("implausible manifest fields in " + path);
  }
  return m;
}

}  // namespace

CheckpointWriter::CheckpointWriter(streaming::DynamicHeteroGraph* graph,
                                   std::string dir,
                                   CheckpointWriterOptions options)
    : graph_(graph), dir_(std::move(dir)), options_(options) {
  ZCHECK(graph_ != nullptr);
  obs::MetricsRegistry* reg = options_.registry != nullptr
                                  ? options_.registry
                                  : obs::MetricsRegistry::Global();
  checkpoints_ = reg->GetCounter("persist.checkpoints");
  checkpoint_failures_ = reg->GetCounter("persist.checkpoint_failures");
  segments_written_ = reg->GetCounter("persist.checkpoint_segments_written");
  segments_reused_ = reg->GetCounter("persist.checkpoint_segments_reused");
  checkpoint_latency_us_ = reg->GetHistogram("persist.checkpoint_latency_us");
  checkpoint_bytes_ = reg->GetHistogram("persist.checkpoint_bytes");
  last_epoch_gauge_ = reg->GetGauge("persist.last_checkpoint_epoch");
}

void CheckpointWriter::AdoptPreviousLocked() const {
  if (loaded_prev_) return;
  // Adopt a pre-existing checkpoint's segment files for reuse (a recovered
  // process keeps checkpointing incrementally) and its epoch (so cadence
  // policies do not re-checkpoint an unchanged graph after a restart). A
  // corrupt manifest just disables reuse — the next Write replaces it whole.
  loaded_prev_ = true;
  StatusOr<Manifest> prev = LoadManifest(dir_);
  if (prev.ok()) {
    last_checkpoint_epoch_ = prev.value().checkpoint_epoch;
    for (size_t s = 0; s < prev.value().segments.size(); ++s) {
      prev_segments_[static_cast<int64_t>(s)] = prev.value().segments[s];
    }
  }
}

uint64_t CheckpointWriter::last_checkpoint_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdoptPreviousLocked();
  return last_checkpoint_epoch_;
}

StatusOr<CheckpointStats> CheckpointWriter::Write() {
  WallTimer timer;
  std::lock_guard<std::mutex> lock(mu_);
  AdoptPreviousLocked();
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    checkpoint_failures_->Add(1);
    return Status::Unavailable("cannot create checkpoint directory " + dir_);
  }

  // Capture order is the whole correctness story: the epoch FIRST, the base
  // SECOND. Every overlay entry pending after this line has epoch > C, so
  // any base captured later (even if a fold lands in between) plus the WAL
  // tail above C is complete. The reverse order would let a fold absorb
  // epochs above C into a base we did not capture.
  const uint64_t checkpoint_epoch = graph_->SafeTruncateEpoch();
  auto [base, base_generation] = graph_->CapturedBase();
  const int64_t coverage = base->num_nodes();
  const int64_t mint_origin = graph_->mint_origin();

  Manifest m;
  m.checkpoint_epoch = checkpoint_epoch;
  m.base_generation = base_generation;
  m.segment_span = base->segment_span();
  m.coverage = coverage;
  m.mint_origin = mint_origin;
  m.wal_shards = options_.wal_shards;
  m.folded_birth_epochs.reserve(static_cast<size_t>(coverage - mint_origin));
  for (graph::NodeId id = mint_origin; id < coverage; ++id) {
    m.folded_birth_epochs.push_back(graph_->MintBirthEpoch(id));
  }
  const int64_t allocated = graph_->num_nodes_allocated();
  m.records.reserve(static_cast<size_t>(allocated - coverage));
  for (graph::NodeId id = coverage; id < allocated; ++id) {
    m.records.push_back(graph_->SnapshotNodeRecord(id));
  }

  CheckpointStats stats;
  stats.checkpoint_epoch = checkpoint_epoch;
  stats.base_generation = base_generation;

  // Segment files: write only those whose generation advanced since the
  // last checkpoint; re-reference the rest (same index + same generation =
  // identical immutable content).
  for (int64_t s = 0; s < base->num_segments(); ++s) {
    const uint64_t gen = base->segment_generation(s);
    const std::string name = SegFileName(s, gen);
    auto prev = prev_segments_.find(s);
    if (prev != prev_segments_.end() && std::get<0>(prev->second) == gen &&
        std::get<1>(prev->second) == name &&
        fs::exists(fs::path(dir_) / name)) {
      m.segments.emplace_back(gen, name, std::get<2>(prev->second));
      stats.bytes_reused += std::get<2>(prev->second);
      ++stats.segments_reused;
      continue;
    }
    const std::string tmp = (fs::path(dir_) / (name + ".tmp")).string();
    const std::string final_path = (fs::path(dir_) / name).string();
    Status st = graph::SaveCsrSegment(base->segment(s), tmp);
    if (st.ok()) st = FsyncPath(tmp);
    if (st.ok()) {
      fs::rename(tmp, final_path, ec);
      if (ec) st = Status::Internal("cannot publish " + final_path);
    }
    if (!st.ok()) {
      checkpoint_failures_->Add(1);
      return st;
    }
    const int64_t bytes = static_cast<int64_t>(fs::file_size(final_path, ec));
    m.segments.emplace_back(gen, name, bytes);
    stats.bytes_written += bytes;
    ++stats.segments_written;
  }

  Status st = SaveManifest(m, dir_);
  if (!st.ok()) {
    checkpoint_failures_->Add(1);
    return st;
  }
  {
    std::error_code size_ec;
    stats.manifest_bytes = static_cast<int64_t>(
        fs::file_size(fs::path(dir_) / "MANIFEST", size_ec));
    stats.bytes_written += stats.manifest_bytes;
  }

  // GC segment files the new manifest no longer references (superseded
  // generations, or stale leftovers from a pre-crash writer).
  {
    std::set<std::string> referenced;
    for (const auto& [gen, name, bytes] : m.segments) referenced.insert(name);
    for (const auto& entry : fs::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) == 0 && !referenced.count(name)) {
        std::error_code rm_ec;
        fs::remove(entry.path(), rm_ec);
      }
    }
  }

  prev_segments_.clear();
  for (size_t s = 0; s < m.segments.size(); ++s) {
    prev_segments_[static_cast<int64_t>(s)] = m.segments[s];
  }
  last_checkpoint_epoch_ = checkpoint_epoch;
  stats.latency_us = static_cast<int64_t>(timer.ElapsedMicros());

  checkpoints_->Add(1);
  segments_written_->Add(stats.segments_written);
  segments_reused_->Add(stats.segments_reused);
  checkpoint_latency_us_->Record(stats.latency_us);
  checkpoint_bytes_->Record(stats.bytes_written);
  last_epoch_gauge_->Set(static_cast<double>(checkpoint_epoch));
  return stats;
}

StatusOr<RecoveredState> RecoverFrom(const std::string& dir,
                                     const RecoverOptions& options) {
  obs::MetricsRegistry* reg = options.registry != nullptr
                                  ? options.registry
                                  : obs::MetricsRegistry::Global();
  StatusOr<Manifest> loaded = LoadManifest(dir);
  if (!loaded.ok()) return loaded.status();
  Manifest m = std::move(loaded).value();

  // Load the segments the manifest references and reassemble the base.
  std::vector<std::shared_ptr<const graph::CsrSegment>> segs;
  segs.reserve(m.segments.size());
  for (size_t s = 0; s < m.segments.size(); ++s) {
    const auto& [gen, name, bytes] = m.segments[s];
    auto seg = graph::LoadCsrSegment((fs::path(dir) / name).string());
    if (!seg.ok()) return seg.status();
    if (seg.value()->generation() != gen) {
      return Status::InvalidArgument(
          "segment file " + name + " does not match its manifest generation");
    }
    segs.push_back(std::move(seg).value());
  }
  auto base = graph::SegmentedCsr::FromSegments(m.segment_span,
                                                std::move(segs));
  if (!base.ok()) return base.status();
  if (base.value()->num_nodes() != m.coverage) {
    return Status::InvalidArgument(
        "recovered base coverage disagrees with the manifest");
  }

  streaming::DynamicHeteroGraph::RecoveryImage image;
  image.base = base.value();
  image.checkpoint_epoch = m.checkpoint_epoch;
  image.base_generation = m.base_generation;
  image.mint_origin = m.mint_origin;
  image.folded_birth_epochs = std::move(m.folded_birth_epochs);
  image.overlay_records = std::move(m.records);
  auto graph =
      streaming::DynamicHeteroGraph::Recover(image, options.graph_options);
  if (!graph.ok()) return graph.status();

  RecoveredState state;
  state.graph = std::move(graph).value();
  state.checkpoint_epoch = m.checkpoint_epoch;
  state.log = std::make_unique<streaming::GraphDeltaLog>(m.wal_shards);
  // Even an empty WAL tail must push the epoch sequence past the epochs
  // already folded into the recovered base.
  state.log->AdvanceEpochFloor(m.checkpoint_epoch);

  // Restore the WAL tail (original epochs) into the fresh in-memory log.
  std::vector<std::pair<uint64_t, std::string>> wal_files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    uint64_t start = 0;
    if (ParseWalFileName(entry.path().filename().string(), &start)) {
      wal_files.emplace_back(start, entry.path().string());
    }
  }
  std::sort(wal_files.begin(), wal_files.end());
  std::vector<WalRecord> records;
  for (size_t i = 0; i < wal_files.size(); ++i) {
    auto read = ReadWal(wal_files[i].second);
    if (!read.ok()) return read.status();
    if (read.value().torn_tail_records > 0 && i + 1 < wal_files.size()) {
      // A torn record is only explicable in the newest file (the one being
      // appended at the crash); earlier files were sealed by rotation.
      return Status::InvalidArgument("torn WAL record in a sealed file: " +
                                     wal_files[i].second);
    }
    state.torn_wal_records += read.value().torn_tail_records;
    for (WalRecord& rec : read.value().records) {
      if (rec.batch.epoch <= m.checkpoint_epoch) continue;  // checkpointed
      records.push_back(std::move(rec));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const WalRecord& a, const WalRecord& b) {
              return a.batch.epoch < b.batch.epoch;
            });
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].batch.epoch == records[i - 1].batch.epoch) {
      return Status::InvalidArgument("duplicate epoch in the WAL tail");
    }
  }
  for (WalRecord& rec : records) {
    ZOOMER_RETURN_IF_ERROR(
        state.log->RestoreBatch(rec.shard, std::move(rec.batch)));
  }

  // Replay through the normal apply path: issuance notification then apply,
  // exactly as the ingest pipeline drives a live graph. The per-segment
  // replay floors inside the graph drop the half-edges the checkpointed
  // segments had already folded.
  const std::vector<streaming::DeltaBatch> tail =
      state.log->ReadSince(m.checkpoint_epoch);
  for (const streaming::DeltaBatch& b : tail) {
    state.graph->NoteEpochIssued(b.epoch);
    Status st = state.graph->ApplyBatch(b);
    if (!st.ok()) {
      return Status::InvalidArgument("WAL replay failed at epoch " +
                                     std::to_string(b.epoch) + ": " +
                                     st.ToString());
    }
    ++state.replayed_epochs;
    state.replayed_edge_events += static_cast<int64_t>(b.events.size());
    state.replayed_node_events +=
        static_cast<int64_t>(b.node_events.size());
  }

  reg->GetGauge("persist.recovery_replay_epochs")
      ->Set(static_cast<double>(state.replayed_epochs));
  reg->GetGauge("persist.recovery_torn_wal_records")
      ->Set(static_cast<double>(state.torn_wal_records));
  return state;
}

}  // namespace persist
}  // namespace zoomer
