#include "persist/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <span>

#include "common/byte_buffer.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/timer.h"

namespace zoomer {
namespace persist {

namespace {

// A record larger than this is treated as corruption, not a real batch —
// it caps how far a bogus length field can drag the reader.
constexpr uint32_t kMaxRecordPayload = 1u << 30;
constexpr uint64_t kMaxBatchElems = 1ull << 30;

void EncodeBatch(int shard, const streaming::DeltaBatch& batch,
                 ByteWriter* w) {
  w->Scalar<uint64_t>(batch.epoch);
  w->Scalar<int32_t>(shard);
  w->Scalar<uint64_t>(batch.events.size());
  for (const streaming::EdgeEvent& ev : batch.events) {
    w->Scalar<int64_t>(ev.src);
    w->Scalar<int64_t>(ev.dst);
    w->Scalar<uint8_t>(static_cast<uint8_t>(ev.kind));
    w->Scalar<float>(ev.weight);
    w->Scalar<int64_t>(ev.timestamp);
  }
  w->Scalar<uint64_t>(batch.node_events.size());
  for (const streaming::NodeEvent& nv : batch.node_events) {
    w->Scalar<int64_t>(nv.id);
    w->Scalar<uint8_t>(static_cast<uint8_t>(nv.type));
    w->Scalar<int64_t>(nv.timestamp);
    w->Vector(nv.content);
    w->Vector(nv.slots);
  }
}

Status DecodeBatch(std::span<const uint8_t> payload, WalRecord* out) {
  ByteReader r(payload);
  int32_t shard = 0;
  uint64_t num_edges = 0;
  r.Scalar(&out->batch.epoch);
  r.Scalar(&shard);
  r.Scalar(&num_edges);
  if (!r.ok() || num_edges > kMaxBatchElems) {
    return Status::InvalidArgument("corrupt WAL record header");
  }
  out->shard = shard;
  out->batch.events.resize(num_edges);
  for (streaming::EdgeEvent& ev : out->batch.events) {
    uint8_t kind = 0;
    r.Scalar(&ev.src);
    r.Scalar(&ev.dst);
    r.Scalar(&kind);
    r.Scalar(&ev.weight);
    r.Scalar(&ev.timestamp);
    if (kind >= graph::kNumRelationKinds) {
      return Status::InvalidArgument("WAL edge event kind out of range");
    }
    ev.kind = static_cast<graph::RelationKind>(kind);
  }
  uint64_t num_nodes = 0;
  r.Scalar(&num_nodes);
  if (!r.ok() || num_nodes > kMaxBatchElems) {
    return Status::InvalidArgument("corrupt WAL record node section");
  }
  out->batch.node_events.resize(num_nodes);
  for (streaming::NodeEvent& nv : out->batch.node_events) {
    uint8_t type = 0;
    r.Scalar(&nv.id);
    r.Scalar(&type);
    r.Scalar(&nv.timestamp);
    r.Vector(&nv.content, kMaxBatchElems);
    r.Vector(&nv.slots, kMaxBatchElems);
    if (type >= graph::kNumNodeTypes) {
      return Status::InvalidArgument("WAL node event type out of range");
    }
    nv.type = static_cast<graph::NodeType>(type);
  }
  if (!r.ok() || !r.exhausted()) {
    return Status::InvalidArgument("WAL record payload size mismatch");
  }
  if (out->batch.epoch == 0) {
    return Status::InvalidArgument("WAL record carries epoch 0");
  }
  return Status::OK();
}

}  // namespace

StatusOr<WalReadResult> ReadWal(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open WAL file " + path);
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  WalReadResult out;
  std::vector<uint8_t> payload;
  for (;;) {
    uint32_t header[2] = {0, 0};  // length, crc
    const size_t got = std::fread(header, 1, sizeof(header), f);
    if (got == 0 && std::feof(f)) break;  // clean end
    if (got < sizeof(header)) {
      out.torn_tail_records = 1;  // header cut mid-write
      break;
    }
    if (header[0] > kMaxRecordPayload) {
      return Status::InvalidArgument("oversized WAL record in " + path);
    }
    payload.resize(header[0]);
    if (std::fread(payload.data(), 1, payload.size(), f) < payload.size()) {
      out.torn_tail_records = 1;  // payload cut mid-write
      break;
    }
    if (Crc32(payload.data(), payload.size()) != header[1]) {
      return Status::InvalidArgument("WAL record CRC mismatch in " + path);
    }
    WalRecord rec;
    ZOOMER_RETURN_IF_ERROR(DecodeBatch(payload, &rec));
    out.records.push_back(std::move(rec));
  }
  return out;
}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open WAL file " + path +
                               " for writing");
  }
  return std::unique_ptr<WalWriter>(new WalWriter(f, path));
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Append(int shard, const streaming::DeltaBatch& batch) {
  ByteWriter payload;
  EncodeBatch(shard, batch, &payload);
  const uint32_t header[2] = {
      static_cast<uint32_t>(payload.size()),
      Crc32(payload.data().data(), payload.size()),
  };
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL writer already closed");
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data().data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::Internal("short write to WAL file " + path_);
  }
  bytes_written_ += static_cast<int64_t>(sizeof(header) + payload.size());
  ++records_written_;
  max_epoch_ = std::max(max_epoch_, batch.epoch);
  return Status::OK();
}

Status WalWriter::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("WAL writer already closed");
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::Internal("fsync failed for WAL file " + path_);
  }
  return Status::OK();
}

Status WalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  Status st = Status::OK();
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    st = Status::Internal("fsync failed for WAL file " + path_);
  }
  std::fclose(file_);
  file_ = nullptr;
  return st;
}

std::string WalFileName(uint64_t start_epoch) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal-%020" PRIu64 ".log", start_epoch);
  return buf;
}

bool ParseWalFileName(const std::string& name, uint64_t* start_epoch) {
  if (name.size() != 28 || name.rfind("wal-", 0) != 0 ||
      name.substr(24) != ".log") {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *start_epoch = v;
  return true;
}

DeltaLogPersister::DeltaLogPersister(streaming::GraphDeltaLog* log,
                                     std::string dir,
                                     DeltaLogPersisterOptions options)
    : log_(log), dir_(std::move(dir)), options_(options) {
  ZCHECK(log_ != nullptr);
  ZCHECK_GT(options_.fsync_every_batches, 0);
  obs::MetricsRegistry* reg = options_.registry != nullptr
                                  ? options_.registry
                                  : obs::MetricsRegistry::Global();
  wal_appends_ = reg->GetCounter("persist.wal_appends");
  wal_bytes_ = reg->GetCounter("persist.wal_bytes");
  wal_rotations_ = reg->GetCounter("persist.wal_rotations");
  wal_sync_failures_ = reg->GetCounter("persist.wal_sync_failures");
  wal_fsync_latency_us_ = reg->GetHistogram("persist.wal_fsync_latency_us");
}

DeltaLogPersister::~DeltaLogPersister() { Stop(); }

Status DeltaLogPersister::Start(uint64_t checkpoint_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return Status::FailedPrecondition("persister already started");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::Unavailable("cannot create WAL directory " + dir_);
  }
  // Adopt a recovered process's surviving tail files: they hold the batches
  // between the last checkpoint and the crash, and are GC'd by the same
  // rule as files we write ourselves.
  closed_.clear();
  uint64_t max_start = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    uint64_t start = 0;
    const std::string name = entry.path().filename().string();
    if (!ParseWalFileName(name, &start)) continue;
    closed_.emplace_back(entry.path().string(), start);
    max_start = std::max(max_start, start);
  }
  std::sort(closed_.begin(), closed_.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  // The fresh active file must be named above everything the adopted files
  // can contain (their content is bounded by the restored log's last epoch)
  // AND above every adopted name, so it never truncates a surviving tail.
  active_start_ = std::max(log_->last_epoch(), max_start) + 1;
  auto writer = WalWriter::Open(
      (std::filesystem::path(dir_) / WalFileName(active_start_)).string());
  if (!writer.ok()) return writer.status();
  active_ = std::move(writer).value();
  consumer_id_ = log_->RegisterConsumer(checkpoint_epoch);
  unsynced_batches_ = 0;
  started_ = true;
  log_->SetAppendObserver(
      [this](int shard, const streaming::DeltaBatch& batch) {
        OnAppend(shard, batch);
      });
  return Status::OK();
}

void DeltaLogPersister::OnAppend(int shard,
                                 const streaming::DeltaBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || active_ == nullptr) return;
  const int64_t before = active_->bytes_written();
  Status st = active_->Append(shard, batch);
  if (st.ok()) {
    wal_appends_->Add(1);
    wal_bytes_->Add(active_->bytes_written() - before);
    if (++unsynced_batches_ >= options_.fsync_every_batches) {
      WallTimer timer;
      st = active_->Sync();
      wal_fsync_latency_us_->Record(
          static_cast<int64_t>(timer.ElapsedMicros()));
      unsynced_batches_ = 0;
    }
  }
  if (!st.ok()) {
    // Durability degraded, serving unaffected: count it and keep ingesting
    // — the next checkpoint re-establishes a consistent recovery point.
    wal_sync_failures_->Add(1);
    ZLOG_EVERY_N(WARNING, 64) << "WAL append/sync failed: " << st.ToString();
  }
}

Status DeltaLogPersister::OnCheckpoint(uint64_t checkpoint_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || active_ == nullptr) {
    return Status::FailedPrecondition("persister not started");
  }
  if (active_->records_written() > 0) {
    // Rotate: name the successor after the highest epoch this file can
    // contain, so "content < successor start" holds and the GC rule below
    // stays exact.
    const uint64_t next_start =
        std::max(active_->max_epoch(), active_start_) + 1;
    ZOOMER_RETURN_IF_ERROR(active_->Close());
    closed_.emplace_back(active_->path(), active_start_);
    auto writer = WalWriter::Open(
        (std::filesystem::path(dir_) / WalFileName(next_start)).string());
    if (!writer.ok()) return writer.status();
    active_ = std::move(writer).value();
    active_start_ = next_start;
    unsynced_batches_ = 0;
    wal_rotations_->Add(1);
  } else {
    ZOOMER_RETURN_IF_ERROR(active_->Sync());
  }
  // GC: a closed file's epochs are all < its successor's start, so it is
  // fully covered once the checkpoint reaches successor_start - 1.
  size_t kept = 0;
  for (size_t i = 0; i < closed_.size(); ++i) {
    const uint64_t successor_start =
        i + 1 < closed_.size() ? closed_[i + 1].second : active_start_;
    if (successor_start - 1 <= checkpoint_epoch) {
      std::error_code ec;
      std::filesystem::remove(closed_[i].first, ec);
    } else {
      closed_[kept++] = closed_[i];
    }
  }
  closed_.resize(kept);
  log_->AdvanceConsumer(consumer_id_, checkpoint_epoch);
  return Status::OK();
}

Status DeltaLogPersister::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return Status::OK();
    started_ = false;
  }
  // Detach outside mu_: a concurrent OnAppend holds the log's shard lock
  // and waits on mu_; SetAppendObserver waits on the observer lock held
  // across that same call — taking it under mu_ would deadlock.
  log_->SetAppendObserver({});
  std::lock_guard<std::mutex> lock(mu_);
  Status st = Status::OK();
  if (active_ != nullptr) st = active_->Close();
  if (consumer_id_ >= 0) {
    log_->UnregisterConsumer(consumer_id_);
    consumer_id_ = -1;
  }
  return st;
}

std::vector<std::string> DeltaLogPersister::LiveFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, start] : closed_) out.push_back(path);
  if (active_ != nullptr) out.push_back(active_->path());
  return out;
}

}  // namespace persist
}  // namespace zoomer
