// Checkpointing and crash recovery on the segment seam (ROADMAP
// durability item). A checkpoint is a directory of per-segment CSR files
// plus a manifest:
//
//   seg-<s>-g<generation>.ckpt   one immutable CsrSegment (graph_io format)
//   MANIFEST                     epoch, segment table, node-mint record
//   wal-<start>.log              delta-log tail (written by DeltaLogPersister)
//
// Incrementality rides the segment generations: a segment file is content-
// addressed by (index, generation), so a checkpoint after an incremental
// fold rewrites only the segments whose generation advanced and re-
// references the rest — the same sharing trick SegmentedCsr::Successor
// plays in memory, replayed on disk.
//
// The invariant the manifest pins: its checkpoint epoch C is
// SafeTruncateEpoch() *captured before the base* — every overlay entry
// (folded or still pending) with epoch <= C is inside the recorded
// segments, and everything above C is in the WAL tail. Recovery is
// therefore load + replay-through-the-normal-apply-path, with per-segment
// replay floors (CsrSegment::folded_epoch) filtering the half-edges a
// segment had already absorbed.
#ifndef ZOOMER_PERSIST_CHECKPOINT_H_
#define ZOOMER_PERSIST_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "persist/wal.h"
#include "streaming/dynamic_hetero_graph.h"
#include "streaming/graph_delta_log.h"

namespace zoomer {
namespace persist {

struct CheckpointStats {
  uint64_t checkpoint_epoch = 0;
  uint64_t base_generation = 0;
  int64_t segments_written = 0;
  int64_t segments_reused = 0;
  int64_t bytes_written = 0;  // segment files + manifest actually written
  int64_t bytes_reused = 0;   // size of segment files re-referenced
  int64_t manifest_bytes = 0;
  int64_t latency_us = 0;
};

struct CheckpointWriterOptions {
  obs::MetricsRegistry* registry = nullptr;  // null = Global()
  /// Number of WAL shards recorded in the manifest (recovery recreates the
  /// GraphDeltaLog with this sharding). Keep equal to the live log's.
  int wal_shards = 4;
};

/// Writes incremental checkpoints of a DynamicHeteroGraph. Safe to run from
/// a janitor thread concurrent with ingest: the epoch is captured before
/// the base (see file comment) and node records are snapshotted through the
/// applied-flag acquire protocol. One writer per directory.
class CheckpointWriter {
 public:
  CheckpointWriter(streaming::DynamicHeteroGraph* graph, std::string dir,
                   CheckpointWriterOptions options = {});

  /// Writes one checkpoint; returns its stats. On any error the previous
  /// MANIFEST is left intact (the new one lands via tmp-file + rename), so
  /// the directory always holds a recoverable checkpoint if it ever held
  /// one.
  StatusOr<CheckpointStats> Write();

  /// Epoch of the newest durable checkpoint written by this writer (or
  /// adopted from a pre-existing MANIFEST in the directory); 0 if none.
  uint64_t last_checkpoint_epoch() const;

 private:
  streaming::DynamicHeteroGraph* graph_;
  const std::string dir_;
  const CheckpointWriterOptions options_;

  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* checkpoint_failures_ = nullptr;
  obs::Counter* segments_written_ = nullptr;
  obs::Counter* segments_reused_ = nullptr;
  obs::Histogram* checkpoint_latency_us_ = nullptr;
  obs::Histogram* checkpoint_bytes_ = nullptr;
  obs::Gauge* last_epoch_gauge_ = nullptr;

  /// Lazily adopts the directory's existing MANIFEST (mutable: it is a
  /// cache of on-disk state, fetched on first use even from the const
  /// last_checkpoint_epoch() accessor).
  void AdoptPreviousLocked() const;

  mutable std::mutex mu_;
  mutable bool loaded_prev_ = false;            // guarded by mu_
  mutable uint64_t last_checkpoint_epoch_ = 0;  // guarded by mu_
  /// Segment files the current MANIFEST references: index ->
  /// (generation, file name, file bytes). Seeds reuse and GC.
  mutable std::map<int64_t, std::tuple<uint64_t, std::string, int64_t>>
      prev_segments_;                           // guarded by mu_
};

struct RecoverOptions {
  streaming::DynamicHeteroGraphOptions graph_options;
  obs::MetricsRegistry* registry = nullptr;  // null = Global()
};

/// Everything RecoverFrom rebuilds. The graph reads exactly as the
/// pre-crash graph did at its last applied epoch; the log holds the
/// restored WAL tail (original epochs) so replica revival and truncation
/// cursors keep working, and a DeltaLogPersister::Start on it resumes
/// durability where the crash left off.
struct RecoveredState {
  std::unique_ptr<streaming::DynamicHeteroGraph> graph;
  std::unique_ptr<streaming::GraphDeltaLog> log;
  uint64_t checkpoint_epoch = 0;
  uint64_t replayed_epochs = 0;      // WAL batches re-applied past C
  int64_t replayed_edge_events = 0;
  int64_t replayed_node_events = 0;
  int torn_wal_records = 0;          // torn final record dropped (0 or 1)
};

/// Loads the newest checkpoint in `dir` and replays the WAL tail through
/// the normal apply path. Fails with a clear Status — never a crash, never
/// a silently short graph — on a missing manifest (NotFound), a corrupted
/// or truncated manifest/segment/WAL file (InvalidArgument), or a torn WAL
/// record that is not the final one.
StatusOr<RecoveredState> RecoverFrom(const std::string& dir,
                                     const RecoverOptions& options = {});

}  // namespace persist
}  // namespace zoomer

#endif  // ZOOMER_PERSIST_CHECKPOINT_H_
